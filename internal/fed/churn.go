package fed

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/tensor"
)

// This file is the churn-simulation harness: a scripted-peer driver that
// replays deterministic join/leave/crash/rejoin schedules against the
// asynchronous scheduler over loopback links and audits the seat-book
// invariants the elastic-membership design promises — every admitted seat's
// task reports land exactly once, every commit's weight denominator is the
// sum of the weights actually folded from live seats, the global version is
// monotone, and upload accounting closes (every update a peer sent is
// folded or counted exactly once, never duplicated, never silently lost).
// Tests call RunChurn with hand-written schedules for the scripted corners
// and with RandomChurnScripts for the seeded property mode; violations come
// back as strings so a failure names the broken invariant, not just a hang.

// ChurnAction is the scripted mid-run membership move of one churn peer.
type ChurnAction int

const (
	// ChurnStay runs the peer to completion with no membership event.
	ChurnStay ChurnAction = iota
	// ChurnLeave sends a clean Leave frame at the scripted point and closes
	// the link: the seat retires — renormalized away, never counted dead.
	ChurnLeave
	// ChurnCrash drops the link abruptly at the scripted point, exercising
	// the eviction path (and, with Rejoin, the catch-up splice back in).
	ChurnCrash
)

// ChurnScript describes one peer's scripted lifecycle in a RunChurn run.
// The zero value is a founding seat that stays to the end.
type ChurnScript struct {
	// Join makes the peer a mid-run joiner: instead of holding a founding
	// seat it enters through the v5 join handshake once JoinAfterCommits
	// global commits have landed, and is assigned the next free seat.
	Join bool
	// JoinAfterCommits is the join gate: the number of version-bumping
	// commits to wait for before dialing in (joiners only).
	JoinAfterCommits int
	// Action is the membership move to make (ChurnStay does nothing).
	Action ChurnAction
	// AtTask is the task during which Action triggers. A joiner admitted
	// after AtTask acts at its first opportunity.
	AtTask int
	// AfterUploads is how many of AtTask's uploads to deliver before acting;
	// values of Rounds or more act after the task's full upload quota.
	AfterUploads int
	// Rejoin, with ChurnCrash, makes the peer wait for its eviction and
	// splice back in through the rejoin path; with ChurnLeave it reclaims
	// its retired seat the same way (seat IDs are never reused, so a
	// departed seat remains rejoinable). The peer then runs to completion.
	Rejoin bool
}

// ChurnConfig configures one churn-simulation run.
type ChurnConfig struct {
	// Tasks and Rounds shape the run: Rounds uploads per seat per task.
	Tasks  int
	Rounds int
	// CommitEvery is the async commit window (K accepted updates); 0 takes
	// the scheduler's default of half the founding cohort.
	CommitEvery int
	// StalenessAlpha is the staleness-weighting exponent; the staleness
	// *bound* is always off in the harness so that scripted pacing can
	// never push a peer into rejection (other tests pin that path).
	StalenessAlpha float64
	// MaxCohort caps the seat book; 0 means every scripted peer fits.
	MaxCohort int
	// Scripts is the cohort: at least one founding (non-Join) seat must
	// stay alive to the end (ChurnStay, or a Rejoin variant).
	Scripts []ChurnScript
	// Logf, when set, additionally receives the server's log lines.
	Logf func(format string, args ...any)
	// Timeout bounds the whole run; 0 means 60 seconds. A run that exceeds
	// it is cancelled and reported as a violation, not a hang.
	Timeout time.Duration
}

// ChurnReport is the outcome of one RunChurn execution.
type ChurnReport struct {
	// Result is the server's run result (partial if the run failed).
	Result *Result
	// Commits is every RoundStats the observer saw, in commit order.
	Commits []RoundStats
	// Seats is the final seat-book size (founders plus admitted joiners).
	Seats int
	// Violations lists every broken invariant; empty means the run upheld
	// the elastic-membership contract end to end.
	Violations []string
}

// churnFold is one recorded aggregator fold: which seat, at what effective
// (staleness-scaled) weight.
type churnFold struct {
	seat   int
	weight float64
}

// churnHarness is the shared state of one RunChurn execution: the server,
// the injection channels, the log/commit synchronisation points peers wait
// on, and the audit trail the invariant checks read.
type churnHarness struct {
	cfg       ChurnConfig
	srv       *Server
	caps      int
	maxCohort int
	timeout   time.Duration

	rejoins chan RejoinRequest
	joins   chan JoinRequest

	mu          sync.Mutex
	cond        *sync.Cond
	logLines    []string
	commitCount int // version-bumping commits so far (join gates wait on it)
	handshakes  int // join/rejoin requests queued but not yet answered
	done        bool
	violations  []string

	lastVersion uint64
	commits     []RoundStats

	window     []churnFold // folds of the open commit window
	windowSum  float64     // their weight sum, accumulated in fold order
	lastWindow int         // fold count of the window just closed

	seats map[int]*churnPeer // seat ID -> peer, as admitted
	ends  []Transport        // every client end ever created, closed at shutdown
}

// violate records one broken invariant.
func (h *churnHarness) violate(format string, args ...any) {
	h.mu.Lock()
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
	h.mu.Unlock()
}

// logf is the server's log sink: lines are retained so peers can
// synchronise on membership events (eviction, retirement) the same way
// operators would — by watching the log.
func (h *churnHarness) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	h.mu.Lock()
	h.logLines = append(h.logLines, line)
	h.mu.Unlock()
	h.cond.Broadcast()
	if h.cfg.Logf != nil {
		h.cfg.Logf("%s", line)
	}
}

// await blocks until pred holds (under the harness lock), the run ends, or
// the harness deadline passes; it reports whether pred held.
func (h *churnHarness) await(pred func() bool) bool {
	deadline := time.Now().Add(h.timeout)
	h.mu.Lock()
	defer h.mu.Unlock()
	for !pred() {
		if h.done || time.Now().After(deadline) {
			return pred()
		}
		h.cond.Wait()
	}
	return true
}

// awaitLog blocks until a server log line contains substr.
func (h *churnHarness) awaitLog(substr string) bool {
	seen := 0
	return h.await(func() bool { return h.logMatchLocked(&seen, substr) })
}

// logMatchLocked scans unseen log lines for substr, advancing *seen; the
// caller (await's predicate loop) holds h.mu.
func (h *churnHarness) logMatchLocked(seen *int, substr string) bool {
	for ; *seen < len(h.logLines); *seen++ {
		if strings.Contains(h.logLines[*seen], substr) {
			return true
		}
	}
	return false
}

// beginHandshake marks a membership handshake as outstanding: a join
// request queued on the scheduler's injection channels, or a scripted
// departure whose comeback has not yet received its catch-up. While any
// handshake is outstanding, peers hold their task reports back (see
// report): a report landing in the departure→rejoin gap could end the run
// before the scheduler ever consumes the rejoin, turning a scripted
// comeback into a coin-flip foreclosure. The gate makes consumption
// deterministic — a gated reporter leaves the scheduler idle on exactly
// the channels the request is queued on — and it cannot deadlock, because
// the handshaking peer always calls endHandshake before its own next
// report, and the scheduler's event loop (eviction, retirement, catch-up
// replies) never waits on a gated report.
func (h *churnHarness) beginHandshake() {
	h.mu.Lock()
	h.handshakes++
	h.mu.Unlock()
	h.cond.Broadcast()
}

// endHandshake marks a membership request as answered (or foreclosed by the
// end of the run), releasing any reports held back by the gate.
func (h *churnHarness) endHandshake() {
	h.mu.Lock()
	h.handshakes--
	h.mu.Unlock()
	h.cond.Broadcast()
}

// runEnded reports whether the server's run has already completed — a
// handshake that races the end of the run is foreclosed, not broken.
func (h *churnHarness) runEnded() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}

// register records a client-side transport so shutdown can close it. Peers
// never close a link the run still depends on themselves (outside a scripted
// crash or leave): an early finisher's close would read as a crash to a
// server still collecting the others' reports. A link registered after the
// run has ended is closed on the spot, so its peer's pending handshake
// unblocks with EOF instead of stranding the goroutine.
func (h *churnHarness) register(t Transport) {
	h.mu.Lock()
	dead := h.done
	if !dead {
		h.ends = append(h.ends, t)
	}
	h.mu.Unlock()
	if dead {
		t.Close()
	}
}

// admitSeat records a joiner's seat assignment and checks the book's shape:
// assignments must be unique and inside the MaxCohort cap.
func (h *churnHarness) admitSeat(p *churnPeer) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if prev, taken := h.seats[p.seat]; taken {
		return fmt.Errorf("%s: assigned seat %d, already held by %s — seat IDs must be unique", p.name, p.seat, prev.name)
	}
	if p.seat < 0 || p.seat >= h.maxCohort {
		return fmt.Errorf("%s: assigned seat %d outside [0,%d)", p.name, p.seat, h.maxCohort)
	}
	h.seats[p.seat] = p
	return nil
}

// roundDone is the harness's RoundObserver: it pins version monotonicity
// (every participating commit bumps the version by exactly one; a
// participant-less flush bumps nothing) and that the reported participant
// count matches the folds the instrumented aggregator recorded.
func (h *churnHarness) roundDone(st RoundStats) {
	h.mu.Lock()
	switch {
	case st.Participants > 0 && st.Version != h.lastVersion+1:
		h.violations = append(h.violations, fmt.Sprintf(
			"commit with %d participants moved the version %d -> %d, want exactly +1",
			st.Participants, h.lastVersion, st.Version))
	case st.Participants == 0 && st.Version != h.lastVersion:
		h.violations = append(h.violations, fmt.Sprintf(
			"participant-less flush moved the version %d -> %d", h.lastVersion, st.Version))
	}
	if st.Participants != h.lastWindow {
		h.violations = append(h.violations, fmt.Sprintf(
			"commit reports %d participants, the aggregator folded %d", st.Participants, h.lastWindow))
	}
	h.lastVersion = st.Version
	if st.Participants > 0 {
		h.commitCount++
	}
	h.commits = append(h.commits, st)
	h.mu.Unlock()
	h.cond.Broadcast()
}

// beginWindow resets the fold record for a fresh commit window.
func (h *churnHarness) beginWindow() {
	h.mu.Lock()
	h.window = h.window[:0]
	h.windowSum = 0
	h.mu.Unlock()
}

// recordFold audits one aggregator fold at the moment it happens (on the
// scheduler goroutine): the folded seat must be live — a retired or evicted
// seat's update must never reach the denominator — and its effective weight
// joins the running sum the commit's denominator is checked against.
func (h *churnHarness) recordFold(u *Update) {
	w := u.Weight
	if w == 0 {
		w = 1
	}
	h.mu.Lock()
	if u.ClientID < 0 || u.ClientID >= len(h.srv.alive) || !h.srv.alive[u.ClientID] {
		h.violations = append(h.violations, fmt.Sprintf(
			"folded an update from seat %d, which is not live at fold time", u.ClientID))
	}
	h.window = append(h.window, churnFold{seat: u.ClientID, weight: w})
	h.windowSum += w
	h.mu.Unlock()
}

// closeWindow checks the closing window's denominator — the aggregator's
// total weight must equal, bit for bit, the sum of the weights recorded at
// fold time (both accumulate in fold order), so the commit renormalizes over
// exactly the live set's contributions — then resets the record.
func (h *churnHarness) closeWindow(inner StreamAggregator) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if wa, ok := inner.(windowedAggregator); ok && len(h.window) > 0 {
		_, _, _, total := wa.windowState()
		if total != h.windowSum {
			h.violations = append(h.violations, fmt.Sprintf(
				"commit denominator %v, want %v (the weights folded from the live set)", total, h.windowSum))
		}
	}
	h.lastWindow = len(h.window)
	h.window = h.window[:0]
	h.windowSum = 0
}

// churnAgg instruments the server's streaming aggregator so the harness
// sees every fold and every window close without changing the arithmetic.
type churnAgg struct {
	inner StreamAggregator
	h     *churnHarness
}

// Name identifies the wrapped aggregation rule.
func (c *churnAgg) Name() string { return c.inner.Name() }

// BeginRound resets the wrapped round and the harness's fold record.
func (c *churnAgg) BeginRound() {
	c.h.beginWindow()
	c.inner.BeginRound()
}

// Accumulate records the fold for the audit, then delegates.
func (c *churnAgg) Accumulate(u *Update) {
	c.h.recordFold(u)
	c.inner.Accumulate(u)
}

// FinishRound audits the closing window's denominator, then delegates.
func (c *churnAgg) FinishRound() []float32 {
	c.h.closeWindow(c.inner)
	return c.inner.FinishRound()
}

// Aggregate implements the buffered interface in terms of the streaming one.
func (c *churnAgg) Aggregate(updates []*Update) []float32 {
	c.BeginRound()
	for _, u := range updates {
		c.Accumulate(u)
	}
	return c.FinishRound()
}

// churnPeer is one scripted protocol endpoint: it speaks the asynchronous
// client protocol over a loopback link and performs its script's membership
// move at the scripted point, recording everything it did so the post-run
// audit can reconcile the server's books against ground truth.
type churnPeer struct {
	h      *churnHarness
	script ChurnScript
	name   string
	seat   int // -1 until assigned (joiners)
	link   Transport

	lastVer uint64
	acted   bool

	sent      []int  // per task: Update frames delivered
	reported  []bool // per task: RoundEnd delivered (and believed processed)
	left      bool   // final state: departed via a clean Leave
	crashed   bool   // final state: crashed and never rejoined
	crashTask int
}

// accConst is the peer's sentinel accuracy: one exact binary fraction per
// seat, so the audit can recompute every matrix cell bit-for-bit from the
// set of reports that should have landed.
func (p *churnPeer) accConst() float64 { return float64(p.seat%16+1) / 32 }

// run drives the peer's whole scripted life; the returned error is a
// protocol violation or a stranded handshake.
func (p *churnPeer) run() error {
	if p.script.Join {
		gate := p.script.JoinAfterCommits
		//lint:ignore fedlint/atomic-hygiene await runs its predicate under h.mu
		if !p.h.await(func() bool { return p.h.commitCount >= gate }) {
			return fmt.Errorf("%s: run ended before its join gate of %d commits", p.name, gate)
		}
		sEnd, cEnd := LoopbackCap(p.h.caps)
		p.h.register(cEnd)
		p.h.beginHandshake()
		p.h.joins <- JoinRequest{LastVersion: 0, Link: sEnd}
		msg, err := cEnd.Recv()
		p.h.endHandshake()
		if err != nil {
			if p.h.runEnded() {
				// The run completed before the scheduler consumed the join
				// request; the seat was never admitted, which is a legitimate
				// outcome for a gate that fires on the run's last commit.
				return nil
			}
			return fmt.Errorf("%s: join handshake got no seat assignment: %v", p.name, err)
		}
		hello, ok := msg.(*helloMsg)
		if !ok {
			return fmt.Errorf("%s: join reply was %T, want the seat-assignment hello", p.name, msg)
		}
		p.seat = hello.clientID
		if err := p.h.admitSeat(p); err != nil {
			return err
		}
		p.link = cEnd
		cu, err := p.recvCatchup()
		if err != nil {
			return fmt.Errorf("%s: join catch-up: %v", p.name, err)
		}
		return p.resume(cu)
	}
	// Founding seat: the first frame is task 0's announcement.
	msg, err := p.link.Recv()
	if err != nil {
		return fmt.Errorf("%s: waiting for the first RoundStart: %v", p.name, err)
	}
	if rs, ok := msg.(*RoundStart); !ok || rs.TaskIdx != 0 {
		return fmt.Errorf("%s: first frame %T, want task 0's RoundStart", p.name, msg)
	}
	return p.tasks(0, 0)
}

// tasks runs the protocol from (task, seen) to the end of the run — or to
// the peer's scripted departure.
func (p *churnPeer) tasks(task, seen int) error {
	for ; task < p.h.cfg.Tasks; task++ {
		done, err := p.runTask(task, seen)
		if done || err != nil {
			return err
		}
		seen = 0
		if task+1 < p.h.cfg.Tasks {
			if err := p.awaitRoundStart(task + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// due reports whether the scripted action triggers before upload u of task.
func (p *churnPeer) due(task, u int) bool {
	if p.acted || p.script.Action == ChurnStay {
		return false
	}
	after := min(p.script.AfterUploads, p.h.cfg.Rounds)
	return task > p.script.AtTask || (task == p.script.AtTask && u >= after)
}

// runTask delivers one task's uploads (possibly acting mid-way), drains to
// the task-final broadcast, and reports. done means the peer's run is over
// (departed, or completed through a catch-up resume).
func (p *churnPeer) runTask(task, seen int) (done bool, err error) {
	for u := seen; u < p.h.cfg.Rounds; u++ {
		if p.due(task, u) {
			return true, p.act(task)
		}
		if err := p.upload(task); err != nil {
			return true, err
		}
	}
	if p.due(task, p.h.cfg.Rounds) {
		return true, p.act(task)
	}
	for {
		msg, err := p.link.Recv()
		if err != nil {
			return true, fmt.Errorf("%s: draining task %d to its final broadcast: %v", p.name, task, err)
		}
		if gm, ok := msg.(*GlobalModel); ok {
			p.lastVer = gm.Version
			if gm.TaskFinal {
				break
			}
		}
	}
	return false, p.report(task)
}

// upload delivers one update: unit-ish weight (varied per seat so
// denominators are non-trivial), based on the last version this peer saw.
func (p *churnPeer) upload(task int) error {
	err := p.link.Send(&Update{
		ClientID: p.seat, Participating: true,
		Weight:         float64(1 + p.seat%3),
		BaseVersion:    p.lastVer,
		Params:         []float32{float32(p.seat + 1)},
		ComputeSeconds: 0.001, UpBytes: 4, DownBytes: 4,
	})
	if err != nil {
		return fmt.Errorf("%s: upload %d of task %d: %v", p.name, p.sent[task], task, err)
	}
	p.sent[task]++
	return nil
}

// report delivers the task's RoundEnd carrying the peer's sentinel accuracy
// for every learned task. It first waits out any queued join/rejoin
// handshake: this report might be the run's last, and ending the run with a
// request still unconsumed would foreclose a scripted membership move at
// random. A timed-out wait proceeds anyway and lets the audit complain.
func (p *churnPeer) report(task int) error {
	//lint:ignore fedlint/atomic-hygiene await runs its predicate under h.mu
	p.h.await(func() bool { return p.h.handshakes == 0 })
	accs := make([]float64, task+1)
	for i := range accs {
		accs[i] = p.accConst()
	}
	if err := p.link.Send(&RoundEnd{ClientID: p.seat, EvalAccs: accs}); err != nil {
		return fmt.Errorf("%s: reporting task %d: %v", p.name, task, err)
	}
	p.reported[task] = true
	return nil
}

// act performs the scripted membership move during task. It always ends the
// normal task loop: a departing peer is done, and a rejoining peer resumes
// through the catch-up state machine instead.
func (p *churnPeer) act(task int) error {
	p.acted = true
	// A departure that scripts a comeback opens the report gate *before* the
	// link is disturbed: the eviction (or retirement), the quota recompute,
	// and every other peer's report-gate check are then all ordered after the
	// increment, so the run cannot end in the gap between the departure and
	// the rejoin request reaching the scheduler. endHandshake is rejoin's
	// job (right after the catch-up, before the peer's own next report);
	// error paths that never reach rejoin release the gate here.
	if p.script.Rejoin {
		p.h.beginHandshake()
	}
	switch p.script.Action {
	case ChurnLeave:
		if err := p.link.Send(&Leave{ClientID: p.seat}); err != nil {
			if p.script.Rejoin {
				p.h.endHandshake()
			}
			return fmt.Errorf("%s: sending leave: %v", p.name, err)
		}
		// Keep the link open until the server has processed the Leave: closing
		// it immediately would race the retirement — a broadcast hitting the
		// closed link first reads as a crash and evicts the seat, which is
		// exactly the noise a clean departure must never make.
		retired := p.h.awaitLog(fmt.Sprintf("seat %d retired at task", p.seat))
		p.link.Close()
		if !retired {
			if p.script.Rejoin {
				p.h.endHandshake()
			}
			return fmt.Errorf("%s: seat %d never logged as retired", p.name, p.seat)
		}
		if !p.script.Rejoin {
			p.left = true
			return nil
		}
		return p.rejoin(task)
	case ChurnCrash:
		p.link.Close()
		if !p.script.Rejoin {
			p.crashed = true
			p.crashTask = task
			return nil
		}
		if !p.h.awaitLog(fmt.Sprintf("evicted client %d at task", p.seat)) {
			p.h.endHandshake()
			return fmt.Errorf("%s: seat %d never logged as evicted", p.name, p.seat)
		}
		return p.rejoin(task)
	}
	if p.script.Rejoin {
		p.h.endHandshake()
	}
	return fmt.Errorf("%s: unknown action %d", p.name, p.script.Action)
}

// rejoin splices the peer back in through the v4 rejoin path and resumes
// from the server's catch-up. task is where the departure happened, so a
// rejoin foreclosed by the end of the run can settle the final state.
func (p *churnPeer) rejoin(task int) error {
	sEnd, cEnd := LoopbackCap(p.h.caps)
	p.h.register(cEnd)
	// The report gate is already held (act opened it before the departure);
	// it is released as soon as the scheduler's reply arrives, before the
	// peer's own resume can reach a gated report.
	p.h.rejoins <- RejoinRequest{ClientID: p.seat, LastVersion: p.lastVer, Link: sEnd}
	p.link = cEnd
	cu, err := p.recvCatchup()
	p.h.endHandshake()
	if err != nil {
		if p.h.runEnded() {
			// The run completed before the rejoin was consumed; the departure
			// stands as this peer's final state.
			if p.script.Action == ChurnCrash {
				p.crashed = true
				p.crashTask = task
			} else {
				p.left = true
			}
			return nil
		}
		return fmt.Errorf("%s: rejoin of seat %d: %v", p.name, p.seat, err)
	}
	return p.resume(cu)
}

// recvCatchup reads the catch-up reply off a fresh link.
func (p *churnPeer) recvCatchup() (*Catchup, error) {
	msg, err := p.link.Recv()
	if err != nil {
		return nil, err
	}
	cu, ok := msg.(*Catchup)
	if !ok {
		return nil, fmt.Errorf("got %T, want *Catchup", msg)
	}
	return cu, nil
}

// resume continues the run from a catch-up: TaskDone waits for the next
// task, TaskFinal owes the current task's report, and a plain catch-up
// resumes the current task's uploads after the Seen the server counted.
func (p *churnPeer) resume(cu *Catchup) error {
	p.lastVer = cu.Version
	switch {
	case cu.TaskDone:
		if cu.TaskIdx+1 >= p.h.cfg.Tasks {
			return nil
		}
		if err := p.awaitRoundStart(cu.TaskIdx + 1); err != nil {
			return err
		}
		return p.tasks(cu.TaskIdx+1, 0)
	case cu.TaskFinal:
		if err := p.report(cu.TaskIdx); err != nil {
			return err
		}
		if cu.TaskIdx+1 >= p.h.cfg.Tasks {
			return nil
		}
		if err := p.awaitRoundStart(cu.TaskIdx + 1); err != nil {
			return err
		}
		return p.tasks(cu.TaskIdx+1, 0)
	default:
		return p.tasks(cu.TaskIdx, cu.Seen)
	}
}

// awaitRoundStart drains broadcasts until the expected task's announcement.
func (p *churnPeer) awaitRoundStart(expect int) error {
	for {
		msg, err := p.link.Recv()
		if err != nil {
			return fmt.Errorf("%s: waiting for task %d's RoundStart: %v", p.name, expect, err)
		}
		switch m := msg.(type) {
		case *GlobalModel:
			p.lastVer = m.Version
		case *RoundStart:
			if m.TaskIdx != expect {
				return fmt.Errorf("%s: RoundStart for task %d, want %d", p.name, m.TaskIdx, expect)
			}
			return nil
		}
	}
}

// RunChurn executes one churn-simulation run: it builds an asynchronous
// server over loopback links with the scripted founding cohort, drives every
// scripted peer concurrently (joins and rejoins are injected through the
// same channels a RejoinAcceptor would feed), and audits the run against the
// elastic-membership invariants. The returned report's Violations list is
// empty iff every invariant held; the error covers malformed configurations
// only — a misbehaving run is a report full of violations, not an error.
func RunChurn(cfg ChurnConfig) (*ChurnReport, error) {
	if cfg.Tasks <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fed: churn: need positive Tasks and Rounds, got %d/%d", cfg.Tasks, cfg.Rounds)
	}
	founders, anchored := 0, false
	for _, sc := range cfg.Scripts {
		if sc.Join {
			continue
		}
		founders++
		if sc.Action == ChurnStay || sc.Rejoin {
			anchored = true
		}
	}
	if founders == 0 {
		return nil, fmt.Errorf("fed: churn: no founding seats (every script is a joiner)")
	}
	if !anchored {
		return nil, fmt.Errorf("fed: churn: no founding seat survives to the end — the cohort would die out")
	}
	maxCohort := cfg.MaxCohort
	if maxCohort == 0 {
		maxCohort = len(cfg.Scripts)
	}
	if maxCohort < founders {
		return nil, fmt.Errorf("fed: churn: MaxCohort %d below the founding cohort of %d", maxCohort, founders)
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}

	h := &churnHarness{
		cfg:       cfg,
		maxCohort: maxCohort,
		timeout:   timeout,
		caps:      len(cfg.Scripts)*cfg.Rounds*cfg.Tasks + 4*cfg.Tasks + 16,
		rejoins:   make(chan RejoinRequest, len(cfg.Scripts)),
		joins:     make(chan JoinRequest, len(cfg.Scripts)),
		seats:     map[int]*churnPeer{},
	}
	h.cond = sync.NewCond(&h.mu)

	links := make([]Transport, 0, founders)
	peers := make([]*churnPeer, 0, len(cfg.Scripts))
	for i, sc := range cfg.Scripts {
		p := &churnPeer{
			h: h, script: sc, seat: -1,
			name:     fmt.Sprintf("peer[%d]", i),
			sent:     make([]int, cfg.Tasks),
			reported: make([]bool, cfg.Tasks),
		}
		if !sc.Join {
			sEnd, cEnd := LoopbackCap(h.caps)
			h.register(cEnd)
			p.seat = len(links)
			p.link = cEnd
			links = append(links, sEnd)
			h.seats[p.seat] = p
		}
		peers = append(peers, p)
	}

	agg := &churnAgg{inner: &SparseFedAvg{}, h: h}
	srv := NewServer(ServerConfig{
		Method: "churn", NumClients: founders, MaxCohort: maxCohort,
		NumTasks: cfg.Tasks, Rounds: cfg.Rounds,
		Scheduler: SchedulerAsync,
		Async:     AsyncConfig{CommitEvery: cfg.CommitEvery, StalenessAlpha: cfg.StalenessAlpha},
		Logf:      h.logf,
	}, agg, links)
	h.srv = srv
	srv.SetRejoins(h.rejoins)
	srv.SetJoins(h.joins)
	srv.SetObserver(ObserverFuncs{Round: h.roundDone})

	// A slow ticker wakes cond waiters so their deadlines can fire even when
	// no log line or commit arrives to broadcast.
	tickDone := make(chan struct{})
	go func() {
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.cond.Broadcast()
			case <-tickDone:
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	perr := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *churnPeer) {
			defer wg.Done()
			perr[i] = p.run()
		}(i, p)
	}
	res, runErr := srv.Run(ctx)

	h.mu.Lock()
	h.done = true
	ends := append([]Transport(nil), h.ends...)
	h.mu.Unlock()
	h.cond.Broadcast()
	for _, t := range ends {
		t.Close()
	}
	wg.Wait()
	close(tickDone)

	if runErr != nil {
		h.violate("server run failed: %v", runErr)
	}
	for i, err := range perr {
		if err != nil {
			h.violate("peer[%d]: %v", i, err)
		}
	}
	h.audit(res, peers)
	return &ChurnReport{
		Result:     res,
		Commits:    h.commits,
		Seats:      len(srv.links),
		Violations: h.violations,
	}, nil
}

// audit reconciles the server's final books against the peers' ground
// truth: seat-book shape, liveness, death and departure records, refusal
// and eviction counts, the exactly-once report matrix, and per-task upload
// closure. Everything is quiesced when it runs, so plain reads are safe.
func (h *churnHarness) audit(res *Result, peers []*churnPeer) {
	srv := h.srv
	if len(srv.links) > h.maxCohort {
		h.violate("seat book grew to %d, above MaxCohort %d", len(srv.links), h.maxCohort)
	}

	expectedAlive, expectedEvictions := 0, 0
	for _, p := range peers {
		if p.seat < 0 {
			continue // never admitted; its run error is already a violation
		}
		if p.script.Action == ChurnCrash && p.acted {
			expectedEvictions++
		}
		deadAt, dead := res.DeadAfter[p.seat]
		switch {
		case p.left:
			if !srv.left[p.seat] || srv.alive[p.seat] {
				h.violate("%s: seat %d departed cleanly but the book says left=%v alive=%v",
					p.name, p.seat, srv.left[p.seat], srv.alive[p.seat])
			}
			if dead {
				h.violate("%s: clean leave of seat %d recorded as dead at task %d", p.name, p.seat, deadAt)
			}
		case p.crashed:
			if !dead || deadAt != p.crashTask {
				h.violate("%s: crashed seat %d at task %d, DeadAfter says (%d, %v)",
					p.name, p.seat, p.crashTask, deadAt, dead)
			}
			if srv.alive[p.seat] {
				h.violate("%s: crashed seat %d still alive", p.name, p.seat)
			}
		default:
			expectedAlive++
			if !srv.alive[p.seat] {
				h.violate("%s: seat %d ran to completion but is not alive", p.name, p.seat)
			}
			if dead {
				h.violate("%s: completed seat %d recorded dead at task %d", p.name, p.seat, deadAt)
			}
		}
	}
	if got := srv.AliveClients(); got != expectedAlive {
		h.violate("%d alive seats at the end, want %d", got, expectedAlive)
	}
	_, _, evicted, refused := srv.Rejections()
	if refused != 0 {
		h.violate("%d membership handshakes refused, want 0 for a well-formed schedule", refused)
	}
	if evicted != expectedEvictions {
		h.violate("%d evictions, want %d (one per scripted crash)", evicted, expectedEvictions)
	}

	if len(res.PerTask) != h.cfg.Tasks {
		h.violate("run covered %d of %d tasks", len(res.PerTask), h.cfg.Tasks)
		return
	}

	// Exactly-once reports: every matrix cell must equal the mean — summed
	// in ascending seat order, exactly as the server computes it — of the
	// sentinel accuracies of the seats whose reports should have landed.
	seatOrder := make([]int, 0, len(h.seats))
	for seat := range h.seats {
		seatOrder = append(seatOrder, seat)
	}
	sort.Ints(seatOrder)
	for t := 0; t < h.cfg.Tasks; t++ {
		var sum float64
		n := 0
		for _, seat := range seatOrder {
			if p := h.seats[seat]; p.reported[t] {
				sum += p.accConst()
				n++
			}
		}
		if n == 0 {
			h.violate("task %d closed with no reports at all", t)
			continue
		}
		want := sum / float64(n)
		for q := 0; q <= t; q++ {
			if got := res.Matrix.Get(t, q); got != want {
				h.violate("matrix(%d,%d) = %v, want %v — the mean of the %d reports that landed (a lost or duplicated report skews it)",
					t, q, got, want, n)
			}
		}
	}

	// Upload closure: on loopback nothing in flight is ever lost, so every
	// update a peer delivered must be accounted by exactly one commit window
	// of its task — folded, or counted as a staleness/hardening rejection.
	folds := make([]int, h.cfg.Tasks)
	for _, st := range h.commits {
		if st.TaskIdx >= 0 && st.TaskIdx < len(folds) {
			folds[st.TaskIdx] += st.Participants + st.Stale + st.NonFinite
		}
	}
	for t := 0; t < h.cfg.Tasks; t++ {
		want := 0
		for _, p := range peers {
			want += p.sent[t]
		}
		if folds[t] != want {
			h.violate("task %d: commits account for %d uploads, peers delivered %d", t, folds[t], want)
		}
	}
}

// RandomChurnScripts derives a seeded random churn schedule: founders
// founding seats (seat 0 always stays, anchoring the cohort) and joiners
// mid-run joiners, each with a random membership move. The same seed always
// yields the same schedule, so a failing property-test seed reproduces its
// exact scripts; rejoin variants never target the final task, where the
// rejoin splice could race the end of the run.
func RandomChurnScripts(seed uint64, founders, joiners, tasks, rounds int) []ChurnScript {
	rng := tensor.NewRNG(seed ^ 0xC0423)
	scripts := make([]ChurnScript, 0, founders+joiners)
	for i := 0; i < founders; i++ {
		sc := ChurnScript{}
		if i > 0 {
			sc = randomChurnScript(rng, tasks, rounds)
		}
		scripts = append(scripts, sc)
	}
	for j := 0; j < joiners; j++ {
		sc := randomChurnScript(rng, tasks, rounds)
		sc.Join = true
		sc.JoinAfterCommits = 1 + rng.Intn(2)
		scripts = append(scripts, sc)
	}
	return scripts
}

// randomChurnScript draws one membership move: stay, clean leave, crash, or
// crash-and-rejoin, at a random task and upload offset.
func randomChurnScript(rng *tensor.RNG, tasks, rounds int) ChurnScript {
	sc := ChurnScript{AfterUploads: rng.Intn(rounds + 1)}
	switch rng.Intn(4) {
	case 0: // stay
	case 1:
		sc.Action = ChurnLeave
		sc.AtTask = rng.Intn(tasks)
	case 2:
		sc.Action = ChurnCrash
		sc.AtTask = rng.Intn(tasks)
	case 3:
		sc.Action = ChurnCrash
		sc.Rejoin = true
		if tasks > 1 {
			sc.AtTask = rng.Intn(tasks - 1)
		}
	}
	return sc
}
