package fed

import (
	"bytes"
	"context"
	"math"
	"net"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// rmsDev is the root-mean-square deviation between a global model and the
// honest cohort's reference mean — the poisoning metric: how far did the
// attackers drag the aggregate.
func rmsDev(global []float32, ref []float64) float64 {
	var sum float64
	for i := range global {
		d := float64(global[i]) - ref[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(global)))
}

// TestRobustBoundsPoisoning is the aggregation-rule half of the adversarial
// matrix: 8 honest clients near a ground truth, 2 colluding attackers. The
// naive weighted mean is dragged arbitrarily far; every robust rule must stay
// within the honest cohort's own noise floor. Both classic attack shapes are
// driven: sign-flip (×−10) and scaled poisoning (×1000).
func TestRobustBoundsPoisoning(t *testing.T) {
	const n, honest, attackers = 512, 8, 2
	rng := tensor.NewRNG(99)
	truth := make([]float64, n)
	for i := range truth {
		truth[i] = rng.Norm()
	}
	attacks := []struct {
		name  string
		mount func(i int) float32
	}{
		{"sign-flip", func(i int) float32 { return float32(-10 * truth[i]) }},
		{"scaled", func(i int) float32 { return float32(1000 * truth[i]) }},
	}
	rules := []struct {
		name string
		mk   func() Aggregator
	}{
		{"trimmed-mean:0.2", func() Aggregator { return NewBuffered(NewTrimmedMeanFedAvg(0.2)) }},
		{"median", func() Aggregator { return NewBuffered(&CoordinateMedianFedAvg{}) }},
		{"krum:2", func() Aggregator { return NewBuffered(NewKrumFedAvg(2)) }},
		{"fedopt:0.9:trimmed-mean:0.2", func() Aggregator {
			return NewBuffered(NewFedOptServer(0.9, NewTrimmedMeanFedAvg(0.2)))
		}},
	}
	for _, atk := range attacks {
		// Honest updates: truth plus per-client noise. The reference is their
		// exact mean, so "deviation" measures only what the attackers moved.
		var ups []*Update
		ref := make([]float64, n)
		for c := 0; c < honest; c++ {
			params := make([]float32, n)
			for i := range params {
				params[i] = float32(truth[i] + 0.05*rng.Norm())
				ref[i] += float64(params[i]) / honest
			}
			ups = append(ups, &Update{ClientID: c, Participating: true, Weight: 1, Params: params})
		}
		for c := honest; c < honest+attackers; c++ {
			params := make([]float32, n)
			for i := range params {
				params[i] = atk.mount(i)
			}
			ups = append(ups, &Update{ClientID: c, Participating: true, Weight: 1, Params: params})
		}
		naive := (&SparseFedAvg{}).Aggregate(ups)
		if dev := rmsDev(naive, ref); dev < 1 {
			t.Fatalf("%s: naive mean deviated only %.3f — the attack is too weak to prove anything", atk.name, dev)
		}
		for _, r := range rules {
			global := r.mk().Aggregate(ups)
			if dev := rmsDev(global, ref); dev > 0.25 {
				t.Errorf("%s under %s: deviation %.3f from the honest mean, want ≤ 0.25", r.name, atk.name, dev)
			}
		}
	}
}

// TestSyncServerRejectsNonFinite drives the lockstep scheduler with scripted
// peers: client 1 sends NaN parameters in round 1 and an infinite weight in
// round 2. Both uploads must be counted as rejected — never folded — while
// the client keeps its seat and receives every broadcast.
func TestSyncServerRejectsNonFinite(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 2, RejectNonFinite: true, Logf: t.Logf,
	}, nil, []Transport{s0, s1})
	var rounds []RoundStats
	srv.SetObserver(ObserverFuncs{Round: func(s RoundStats) { rounds = append(rounds, s) }})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	recvGM := func(end Transport) *GlobalModel {
		t.Helper()
		msg, err := end.Recv()
		if err != nil {
			t.Fatal(err)
		}
		gm, ok := msg.(*GlobalModel)
		if !ok {
			t.Fatalf("got %T, want *GlobalModel", msg)
		}
		return gm
	}
	for _, end := range []Transport{c0, c1} {
		if _, err := end.Recv(); err != nil { // RoundStart
			t.Fatal(err)
		}
	}
	nan := float32(math.NaN())
	c0.Send(&Update{ClientID: 0, Participating: true, Weight: 1, Params: []float32{2}})
	c1.Send(&Update{ClientID: 1, Participating: true, Weight: 1, Params: []float32{nan}})
	if gm := recvGM(c0); gm.Params[0] != 2 {
		t.Fatalf("round 1 global = %v: the NaN update was folded", gm.Params)
	}
	// The poisoner keeps its seat: it still receives the commit.
	if gm := recvGM(c1); gm.Params[0] != 2 {
		t.Fatalf("rejected client's broadcast = %v", gm.Params)
	}
	for _, end := range []Transport{c0, c1} {
		if _, err := end.Recv(); err != nil { // round 2 RoundStart
			t.Fatal(err)
		}
	}
	c0.Send(&Update{ClientID: 0, Participating: true, Weight: 1, Params: []float32{4}})
	c1.Send(&Update{ClientID: 1, Participating: true, Weight: math.Inf(1), Params: []float32{100}})
	if gm := recvGM(c0); gm.Params[0] != 4 {
		t.Fatalf("round 2 global = %v: the infinite-weight update was folded", gm.Params)
	}
	recvGM(c1)
	c0.Send(&RoundEnd{ClientID: 0, EvalAccs: []float64{0.7}})
	c1.Send(&RoundEnd{ClientID: 1, EvalAccs: []float64{0.5}})
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(rounds) != 2 {
		t.Fatalf("%d rounds observed, want 2", len(rounds))
	}
	for i, r := range rounds {
		if r.Participants != 1 || r.NonFinite != 1 {
			t.Fatalf("round %d: %d participants, %d non-finite rejections, want 1 and 1",
				i, r.Participants, r.NonFinite)
		}
	}
	nonFinite, stale, evicted, _ := srv.Rejections()
	if nonFinite != 2 || stale != 0 || evicted != 0 {
		t.Fatalf("Rejections() = %d/%d/%d, want 2/0/0", nonFinite, stale, evicted)
	}
}

// TestSyncAllRejectedFailsLoudly: when every update of a lockstep round is
// rejected there is nothing to broadcast and the participants would block
// forever — the server must abort with an explicit error instead.
func TestSyncAllRejectedFailsLoudly(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 1, RejectNonFinite: true, Logf: t.Logf,
	}, nil, []Transport{s0})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	if _, err := c0.Recv(); err != nil { // RoundStart
		t.Fatal(err)
	}
	c0.Send(&Update{ClientID: 0, Participating: true, Weight: 1,
		Params: []float32{float32(math.Inf(-1))}})
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("all-rejected round must fail loudly, got %v", err)
	}
}

// TestAsyncServerRejectsNonFinite drives the asynchronous scheduler with a
// garbage injector: the NaN upload must advance the client's books (it owes
// one fewer upload) without committing, the window's stats must report it,
// and the cumulative counter must survive to the run summary.
func TestAsyncServerRejectsNonFinite(t *testing.T) {
	s0, c0 := LoopbackCap(64)
	s1, c1 := LoopbackCap(64)
	srv := NewServer(ServerConfig{
		Method: "test", NumTasks: 1, Rounds: 2, Scheduler: SchedulerAsync,
		Async:           AsyncConfig{CommitEvery: 1},
		RejectNonFinite: true,
		Logf:            t.Logf,
	}, nil, []Transport{s0, s1})
	var rounds []RoundStats
	srv.SetObserver(ObserverFuncs{Round: func(s RoundStats) { rounds = append(rounds, s) }})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(context.Background())
		done <- err
	}()
	recvGM := func(end Transport) *GlobalModel {
		t.Helper()
		msg, err := end.Recv()
		if err != nil {
			t.Fatal(err)
		}
		gm, ok := msg.(*GlobalModel)
		if !ok {
			t.Fatalf("got %T, want *GlobalModel", msg)
		}
		return gm
	}
	for _, end := range []Transport{c0, c1} {
		if _, err := end.Recv(); err != nil { // RoundStart
			t.Fatal(err)
		}
	}
	// c0 fresh → commit v1 = [2].
	c0.Send(&Update{ClientID: 0, Participating: true, Weight: 1, BaseVersion: 0, Params: []float32{2}})
	if gm := recvGM(c0); gm.Version != 1 || gm.Params[0] != 2 {
		t.Fatalf("commit 1: v%d %v", gm.Version, gm.Params)
	}
	recvGM(c1)
	// c1 injects NaN garbage: rejected, no commit, no broadcast — but the
	// upload is consumed (Seen advances), so the task still closes.
	c1.Send(&Update{ClientID: 1, Participating: true, Weight: 1, BaseVersion: 1,
		Params: []float32{float32(math.NaN())}})
	// c0 fresh again → commit v2 = [6]. 8 never reached the global.
	c0.Send(&Update{ClientID: 0, Participating: true, Weight: 1, BaseVersion: 1, Params: []float32{6}})
	if gm := recvGM(c0); gm.Version != 2 || gm.Params[0] != 6 {
		t.Fatalf("commit 2: v%d %v — a NaN leaked into the fold", gm.Version, gm.Params)
	}
	recvGM(c1)
	// c1's last upload is healthy → commit v3 = [10], then the task-final.
	c1.Send(&Update{ClientID: 1, Participating: true, Weight: 1, BaseVersion: 2, Params: []float32{10}})
	if gm := recvGM(c0); gm.Version != 3 || gm.Params[0] != 10 {
		t.Fatalf("commit 3: v%d %v", gm.Version, gm.Params)
	}
	recvGM(c1)
	for i, end := range []Transport{c0, c1} {
		if gm := recvGM(end); !gm.TaskFinal {
			t.Fatal("missing task-final broadcast")
		}
		end.Send(&RoundEnd{ClientID: i, EvalAccs: []float64{0.6}})
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	participants, nonFinite := 0, 0
	for _, r := range rounds {
		participants += r.Participants
		nonFinite += r.NonFinite
	}
	if participants != 3 || nonFinite != 1 {
		t.Fatalf("folded %d with %d non-finite rejections, want 3 and 1", participants, nonFinite)
	}
	nf, stale, evicted, _ := srv.Rejections()
	if nf != 1 || stale != 0 || evicted != 0 {
		t.Fatalf("Rejections() = %d/%d/%d, want 1/0/0", nf, stale, evicted)
	}
}

// TestMaxFrameCap pins the decoder's configurable frame bound: a frame whose
// length prefix exceeds the configured cap must be refused before any
// allocation, naming the limit; frames under the cap still decode; and a
// sparse frame claiming a dense length beyond MaxFrame/4 is refused by the
// scaled logical bound even though its wire size is tiny.
func TestMaxFrameCap(t *testing.T) {
	var enc Codec
	var buf bytes.Buffer
	big := &Update{ClientID: 0, Participating: true, Weight: 1, Params: make([]float32, 256)}
	for i := range big.Params {
		big.Params[i] = float32(i + 1)
	}
	if err := enc.Encode(&buf, big); err != nil {
		t.Fatal(err)
	}
	capped := Codec{maxFrame: 64}
	if _, err := capped.Decode(&buf); err == nil || !strings.Contains(err.Error(), "exceeds limit 64") {
		t.Fatalf("oversized frame: got %v, want a limit error naming 64", err)
	}
	// A frame under the cap still decodes.
	buf.Reset()
	small := &Update{ClientID: 3, Participating: true, Weight: 2, Params: []float32{1, 2, 3}}
	if err := enc.Encode(&buf, small); err != nil {
		t.Fatal(err)
	}
	msg, err := capped.Decode(&buf)
	if err != nil {
		t.Fatalf("in-bounds frame refused: %v", err)
	}
	if u := msg.(*Update); u.ClientID != 3 || u.Params[2] != 3 {
		t.Fatalf("in-bounds frame mangled: %+v", u)
	}
	// The logical params bound scales with the cap: a small sparse frame must
	// not be able to claim a dense length the cap could never carry.
	buf.Reset()
	sparse := &Update{ClientID: 0, Participating: true, Weight: 1,
		Sparse: &tensor.SparseVec{N: 1 << 20, Indices: []int32{0}, Values: []float32{1}}}
	if err := enc.Encode(&buf, sparse); err != nil {
		t.Fatal(err)
	}
	capped2 := Codec{maxFrame: 1 << 10}
	if _, err := capped2.Decode(&buf); err == nil {
		t.Fatal("sparse frame claiming 1M dense params must be refused at MaxFrame 1KB")
	}
	// End-to-end: the option threads through the wire transport.
	left, right := net.Pipe()
	defer left.Close()
	defer right.Close()
	sender := NewWire(left)
	receiver := NewWireWith(right, WireOptions{MaxFrame: 64})
	errc := make(chan error, 1)
	go func() { errc <- sender.Send(big) }()
	if _, err := receiver.Recv(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("wire recv of oversized frame: got %v, want a limit error", err)
	}
	<-errc // the pipe write may or may not have completed; just reap it
}
