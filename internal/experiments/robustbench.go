package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/fed"
	"repro/internal/tensor"
)

// RobustBenchOptions size the Byzantine-robustness comparison. The zero
// value runs the headline configuration: a 10-client cohort with 2 colluding
// attackers over a 64k-parameter model.
type RobustBenchOptions struct {
	// Dim is the parameter-vector length (default 65536).
	Dim int
	// Clients is the cohort size including attackers (default 10).
	Clients int
	// Attackers is how many cohort members collude (default 2; must leave at
	// least one honest client).
	Attackers int
	// Rounds is how many aggregation rounds each (rule, attack) cell runs —
	// timing is averaged over them (default 5).
	Rounds int
	Seed   uint64
}

// RobustCell is one (aggregation rule, attack) measurement: how far the
// attack dragged the committed global away from the honest cohort's mean,
// and what the rule costs per round.
type RobustCell struct {
	Rule   string `json:"rule"`
	Attack string `json:"attack"`
	// RMSDeviation is the root-mean-square distance between the aggregate
	// and the honest clients' exact mean — 0 is perfect attack suppression;
	// the honest cohort's own noise floor is ~0.05.
	RMSDeviation float64 `json:"rms_deviation"`
	// WallMsPerRound is the host's real milliseconds per aggregation round —
	// informational, it varies with hardware.
	WallMsPerRound float64 `json:"wall_ms_per_round"`
}

// RobustReport is the BENCH_robust.json payload: every robust rule (and the
// naive mean, as the vulnerable baseline) against every attack in the
// matrix, over one seeded synthetic cohort.
type RobustReport struct {
	Dim       int          `json:"dim"`
	Clients   int          `json:"clients"`
	Attackers int          `json:"attackers"`
	Rounds    int          `json:"rounds"`
	Seed      uint64       `json:"seed"`
	Cells     []RobustCell `json:"cells"`
}

// robustAttacks are the adversarial payload shapes: "none" is the control,
// "sign-flip" sends −10× the ground truth, "scaled" sends 1000×. Non-finite
// garbage is absent by design — it never reaches an aggregator, the server's
// ingest hardening rejects it first (see TestSyncServerRejectsNonFinite).
var robustAttacks = []struct {
	name  string
	mount func(truth float64) float32
}{
	{"none", nil},
	{"sign-flip", func(truth float64) float32 { return float32(-10 * truth) }},
	{"scaled", func(truth float64) float32 { return float32(1000 * truth) }},
}

// robustRules are the aggregation rules under test, by their -aggregator
// spec. The naive mean comes first as the baseline the attacks defeat.
var robustRules = []string{"fedavg", "trimmed-mean:0.2", "median", "krum:2", "fedopt:0.9:trimmed-mean:0.2"}

// RobustBench measures each aggregation rule's deviation from the honest
// mean under each attack, on a seeded synthetic cohort (honest updates are
// ground truth plus small per-client noise). Every cell is deterministic for
// a given seed: the rules run directly on the same update set, no engine or
// scheduling in the loop.
func RobustBench(opt RobustBenchOptions) (*RobustReport, error) {
	if opt.Dim == 0 {
		opt.Dim = 1 << 16
	}
	if opt.Clients == 0 {
		opt.Clients = 10
	}
	if opt.Attackers == 0 {
		opt.Attackers = 2
	}
	if opt.Rounds == 0 {
		opt.Rounds = 5
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Attackers >= opt.Clients {
		return nil, fmt.Errorf("experiments: %d attackers leave no honest client in a cohort of %d",
			opt.Attackers, opt.Clients)
	}
	rep := &RobustReport{Dim: opt.Dim, Clients: opt.Clients, Attackers: opt.Attackers,
		Rounds: opt.Rounds, Seed: opt.Seed}
	honest := opt.Clients - opt.Attackers
	for _, atk := range robustAttacks {
		// One cohort per attack, shared by every rule so the cells compare
		// the rules, not the noise draw.
		rng := tensor.NewRNG(opt.Seed)
		truth := make([]float64, opt.Dim)
		for i := range truth {
			truth[i] = rng.Norm()
		}
		ref := make([]float64, opt.Dim)
		ups := make([]*fed.Update, 0, opt.Clients)
		for c := 0; c < honest; c++ {
			params := make([]float32, opt.Dim)
			for i := range params {
				params[i] = float32(truth[i] + 0.05*rng.Norm())
				ref[i] += float64(params[i]) / float64(honest)
			}
			ups = append(ups, &fed.Update{ClientID: c, Participating: true, Weight: 1, Params: params})
		}
		for c := honest; c < opt.Clients; c++ {
			params := make([]float32, opt.Dim)
			for i := range params {
				if atk.mount != nil {
					params[i] = atk.mount(truth[i])
				} else {
					params[i] = float32(truth[i] + 0.05*rng.Norm())
					// An idle "attacker" is one more honest client; it is
					// deliberately left out of ref so every attack's reference
					// is the same honest-majority mean.
				}
			}
			ups = append(ups, &fed.Update{ClientID: c, Participating: true, Weight: 1, Params: params})
		}
		for _, spec := range robustRules {
			agg, err := fed.ParseAggregator(spec, 1)
			if err != nil {
				return nil, err
			}
			var global []float32
			start := time.Now()
			for r := 0; r < opt.Rounds; r++ {
				global = agg.Aggregate(ups)
			}
			wall := time.Since(start)
			var sum float64
			for i := range global {
				d := float64(global[i]) - ref[i]
				sum += d * d
			}
			rep.Cells = append(rep.Cells, RobustCell{
				Rule: spec, Attack: atk.name,
				RMSDeviation:   math.Sqrt(sum / float64(opt.Dim)),
				WallMsPerRound: float64(wall.Microseconds()) / 1000 / float64(opt.Rounds),
			})
		}
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON to path.
func (r *RobustReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Print renders the report as an aligned table, one row per (rule, attack).
func (r *RobustReport) Print(w io.Writer) {
	fmt.Fprintf(w, "robust aggregation bench: %d params, %d clients (%d attackers), %d rounds/cell, seed %d\n",
		r.Dim, r.Clients, r.Attackers, r.Rounds, r.Seed)
	tb := &Table{Title: "RMS deviation from the honest mean (honest noise floor ~0.05)",
		Header: []string{"rule", "attack", "rms-deviation", "wall-ms/round"}}
	for _, c := range r.Cells {
		tb.Rows = append(tb.Rows, []string{
			c.Rule, c.Attack, fmt.Sprintf("%.4f", c.RMSDeviation), fmt.Sprintf("%.2f", c.WallMsPerRound),
		})
	}
	tb.Print(w)
}
