package experiments

import (
	"io"
	"path/filepath"
	"testing"
)

// TestRobustBenchAttacksBounded is the PR's acceptance bar in bench form:
// every attack must defeat the naive mean (that is what makes the matrix an
// attack) and every robust rule must hold the aggregate near the honest
// cohort's mean. CI-sized: a small parameter vector keeps the per-coordinate
// sorts cheap.
func TestRobustBenchAttacksBounded(t *testing.T) {
	rep, err := RobustBench(RobustBenchOptions{Dim: 2048, Rounds: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep.Print(io.Discard)
	if want := len(robustRules) * len(robustAttacks); len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		naive := c.Rule == "fedavg"
		switch {
		case c.Attack == "none":
			if c.RMSDeviation > 0.25 {
				t.Errorf("%s with no attack deviates %.3f from the honest mean", c.Rule, c.RMSDeviation)
			}
		case naive:
			if c.RMSDeviation < 1 {
				t.Errorf("naive mean under %s deviates only %.3f — the attack is too weak", c.Attack, c.RMSDeviation)
			}
		default:
			if c.RMSDeviation > 0.25 {
				t.Errorf("%s under %s deviates %.3f, want the honest noise floor", c.Rule, c.Attack, c.RMSDeviation)
			}
		}
	}
	if _, err := RobustBench(RobustBenchOptions{Clients: 2, Attackers: 2}); err == nil {
		t.Fatal("a cohort with no honest client must be refused")
	}
	// The report must round-trip to disk (the CI artifact path).
	path := filepath.Join(t.TempDir(), "BENCH_robust.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}
