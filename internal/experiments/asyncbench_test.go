package experiments

import (
	"io"
	"path/filepath"
	"testing"
)

// TestAsyncBenchStragglerWin is the PR's acceptance bar: under a
// 1-straggler-in-8 device distribution the asynchronous scheduler must
// commit global models faster (in simulated time) than the synchronous one,
// because a lockstep round is bound by the slow device while the buffered
// commit loop keeps the fast cohort's pace.
func TestAsyncBenchStragglerWin(t *testing.T) {
	opt := AsyncBenchOptions{Tasks: 1, Rounds: 4, LocalIters: 1, Seed: 3}
	if testing.Short() {
		opt.Rounds = 3
	}
	rep := AsyncBench(opt)
	rep.Print(io.Discard)
	if rep.Sync.Commits != opt.Tasks*opt.Rounds {
		t.Fatalf("sync made %d commits, want %d", rep.Sync.Commits, opt.Tasks*opt.Rounds)
	}
	if rep.Async.Commits <= rep.Sync.Commits {
		t.Fatalf("async made %d commits vs sync %d: K=%d of %d clients must commit more often",
			rep.Async.Commits, rep.Sync.Commits, rep.CommitK, rep.Clients)
	}
	if rep.SpeedupPerCommit <= 1 {
		t.Fatalf("async sim-time per commit (%.2fs) does not beat sync (%.2fs)",
			rep.Async.SimSecondsPerCommit, rep.Sync.SimSecondsPerCommit)
	}
	// The report must round-trip to disk (the CI artifact path).
	path := filepath.Join(t.TempDir(), "BENCH_async.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}
