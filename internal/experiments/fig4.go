package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Fig4Result carries one panel of Fig. 4: accuracy-vs-training-time curves
// for each method on one dataset/cluster combination.
type Fig4Result struct {
	Panel   string
	Dataset string
	Methods []string
	Series  []Series // X = cumulative simulated hours, Y = avg accuracy
	Raw     map[string]*fed.Result
}

// fig4Spec describes one panel.
type fig4Spec struct {
	family  data.Family
	mixed30 bool // 30-device cluster with Raspberry Pis
}

var fig4Panels = map[string]fig4Spec{
	"a": {data.CIFAR100, false},
	"b": {data.FC100, false},
	"c": {data.CORe50, false},
	"d": {data.CIFAR100, true},
	"e": {data.FC100, true},
	"f": {data.CORe50, true},
	"g": {data.MiniImageNet, false},
	"h": {data.TinyImageNet, false},
}

// fig4MixedMethods are the three best techniques the 30-device panels
// compare (§V-B).
var fig4MixedMethods = []string{"GEM", "FedWEIT", "FedKNOW"}

// Fig4 runs one panel (a–h) and returns its curves.
func Fig4(panel string, opt Options) (*Fig4Result, error) {
	spec, ok := fig4Panels[panel]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown Fig.4 panel %q (a–h)", panel)
	}
	ds, tasks := spec.family.Build(opt.Scale, opt.Seed)
	rt := RuntimeFor(spec.family, opt.Scale)
	arch := archFor(spec.family)

	methods := AllMethods
	var cluster *device.Cluster
	if spec.mixed30 {
		methods = fig4MixedMethods
		if opt.Scale == data.Full {
			cluster = device.Mixed30()
			rt.Clients = 30
		} else {
			// CI-scale mixed cluster: 3 Jetsons + 3 Raspberry Pis (one 2 GB)
			// so heterogeneity and the OOM path are still exercised.
			cluster = &device.Cluster{Devices: []device.Device{
				device.JetsonAGX, device.JetsonXavierNX, device.JetsonNano,
				device.RaspberryPi(2), device.RaspberryPi(4), device.RaspberryPi(8),
			}}
			rt.Clients = 6
		}
		rt.MemScale = memScaleFor(arch, ds, rt.Width)
	} else {
		if opt.Scale == data.Full {
			cluster = device.Jetson20()
			rt.Clients = 20
		} else {
			cluster = device.Jetson20()
		}
	}

	alloc := data.DefaultAlloc(opt.Seed + 1)
	if opt.Scale == data.CI {
		alloc = data.CIAlloc(opt.Seed + 1)
	}
	opt.tune(&rt)
	seqs := data.Federate(tasks, rt.Clients, alloc)

	res := &Fig4Result{Panel: panel, Dataset: spec.family.Name, Methods: methods,
		Raw: map[string]*fed.Result{}}
	for _, m := range methods {
		r := runOne(m, opt, rt, fixedCluster{cluster}, seqs, ds.NumClasses, arch, ds)
		res.Raw[m] = r
		s := Series{Label: m}
		for _, tp := range r.PerTask {
			s.X = append(s.X, tp.SimHours)
			s.Y = append(s.Y, tp.AvgAccuracy)
		}
		res.Series = append(res.Series, s)
	}
	PrintSeries(opt.out(), fmt.Sprintf("Fig.4(%s): %s accuracy vs training time", panel, spec.family.Name), res.Series)
	return res, nil
}

// memScaleFor maps simulated model bytes to real-hardware bytes so the
// device-memory model (GB-scale boards) bites: the scaled-width models here
// are ~10³–10⁴× smaller than their full-size counterparts (ResNet-18 is
// ~45 MB in float32).
func memScaleFor(arch string, ds *data.Dataset, width int) float64 {
	probe := model.MustBuild(arch, ds.NumClasses, ds.C, ds.H, ds.W, width, tensor.NewRNG(1))
	const realModelBytes = 45e6
	return realModelBytes / float64(probe.ParamBytes())
}
