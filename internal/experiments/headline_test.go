package experiments

import (
	"testing"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

// runMethod executes one method on a fixed small federation and returns the
// engine result (shared by the headline comparative tests).
func runMethod(t testing.TB, method string, seed uint64, numTasks int) *fed.Result {
	t.Helper()
	ds := data.Generate(data.Config{Name: "h", NumClasses: numTasks * 4,
		TrainPerClass: 10, TestPerClass: 4, C: 3, H: 12, W: 12,
		Noise: 0.3, Shift: 1, Seed: seed})
	tasks := data.SplitTasks(ds, numTasks)
	seqs := data.Federate(tasks, 3, data.CIAlloc(seed+1))
	cfg := fed.Config{
		Method: method, Rounds: 2, LocalIters: 3, BatchSize: 8,
		LR: 0.02, LRDecay: 1e-4, NumClasses: ds.NumClasses,
		Bandwidth: 1024 * 1024, Seed: seed,
	}
	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", ds.NumClasses, ds.C, ds.H, ds.W, 1, rng)
	}
	e := fed.NewEngine(cfg, device.Jetson20(), seqs, build, MethodFactory(method, data.CI))
	return e.Run()
}

// TestHeadlineFedKNOWBeatsFedAvgAccuracy is the paper's core claim at the
// smallest reproducible size: over a multi-task sequence, FedKNOW's final
// average accuracy across all learned tasks must beat plain FedAvg's (which
// has no forgetting defence). Summed over five fixed seeds so single-run
// noise at this tiny scale cannot flip the outcome; everything is
// deterministic, so this is a stable regression gate.
func TestHeadlineFedKNOWBeatsFedAvgAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	var fkAcc, faAcc float64
	seeds := []uint64{11, 22, 33, 44, 55}
	for _, seed := range seeds {
		fk := runMethod(t, "FedKNOW", seed, 6)
		fa := runMethod(t, "FedAvg", seed, 6)
		n := len(fk.PerTask) - 1
		fkAcc += fk.PerTask[n].AvgAccuracy
		faAcc += fa.PerTask[n].AvgAccuracy
	}
	if fkAcc <= faAcc {
		t.Fatalf("FedKNOW total final accuracy %.4f must beat FedAvg %.4f", fkAcc, faAcc)
	}
	t.Logf("final avg accuracy over %d seeds: FedKNOW %.4f vs FedAvg %.4f", len(seeds), fkAcc, faAcc)
}

// TestHeadlineFedKNOWCommMatchesFedAvg: FedKNOW's communication equals plain
// FedAvg's (it ships only the dense model), while FedWEIT's exceeds both.
func TestHeadlineFedKNOWCommMatchesFedAvg(t *testing.T) {
	fk := runMethod(t, "FedKNOW", 7, 3)
	fa := runMethod(t, "FedAvg", 7, 3)
	fw := runMethod(t, "FedWEIT", 7, 3)
	fkB := fk.PerTask[2].UpBytes + fk.PerTask[2].DownBytes
	faB := fa.PerTask[2].UpBytes + fa.PerTask[2].DownBytes
	fwB := fw.PerTask[2].UpBytes + fw.PerTask[2].DownBytes
	if fkB != faB {
		t.Fatalf("FedKNOW bytes %d must equal FedAvg %d", fkB, faB)
	}
	if fwB <= fkB {
		t.Fatalf("FedWEIT bytes %d must exceed FedKNOW %d", fwB, fkB)
	}
}

// TestHeadlineKnowledgeMemorySmallerThanGEM: FedKNOW retains 10 % of weights
// (8 bytes each) while GEM retains 10 % of raw samples; on image workloads
// samples dwarf weights, which is the paper's on-device memory argument.
func TestHeadlineKnowledgeMemorySmallerThanGEM(t *testing.T) {
	ds := data.Generate(data.Config{Name: "h", NumClasses: 8,
		TrainPerClass: 40, TestPerClass: 4, C: 3, H: 12, W: 12,
		Noise: 0.3, Seed: 5})
	tasks := data.SplitTasks(ds, 2)
	seqs := data.Federate(tasks, 2, data.CIAlloc(6))
	run := func(method string) int {
		cfg := fed.Config{Method: method, Rounds: 1, LocalIters: 2, BatchSize: 8,
			LR: 0.02, NumClasses: ds.NumClasses, Bandwidth: 1 << 20, Seed: 5}
		var strat fed.Strategy
		factory := func(ctx *fed.ClientCtx) fed.Strategy {
			s := MethodFactory(method, data.CI)(ctx)
			if strat == nil {
				strat = s
			}
			return s
		}
		build := func(rng *tensor.RNG) *model.Model {
			return model.MustBuild("SixCNN", ds.NumClasses, ds.C, ds.H, ds.W, 1, rng)
		}
		fed.NewEngine(cfg, device.Jetson20(), seqs, build, factory).Run()
		return strat.MemoryBytes()
	}
	fkMem := run("FedKNOW")
	gemMem := run("GEM")
	if fkMem <= 0 || gemMem <= 0 {
		t.Fatalf("memory accounting missing: %d / %d", fkMem, gemMem)
	}
	if fkMem >= gemMem {
		t.Fatalf("FedKNOW knowledge (%d B) should undercut GEM sample memory (%d B)", fkMem, gemMem)
	}
}
