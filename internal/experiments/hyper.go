package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
)

// HyperResult reports a hyperparameter search outcome.
type HyperResult struct {
	Best     map[string]float64
	BestAcc  float64
	Searched int
}

// HyperSearch mirrors §V-B's protocol: hyperparameters are selected on a
// held-out SVHN workload (two tasks of five classes) rather than the
// evaluation datasets, avoiding test-set leakage. It grid-searches learning
// rate and decay over the paper's scopes and returns the configuration with
// the highest final average accuracy for the given method.
func HyperSearch(method string, opt Options) (*HyperResult, error) {
	lrs := []float64{0.0005, 0.0008, 0.001, 0.005}
	decays := []float64{1e-6, 1e-5, 1e-4}
	if opt.Scale == data.CI {
		lrs = []float64{0.005, 0.02}
		decays = []float64{1e-5, 1e-4}
	}
	ds, tasks := data.SVHN.Build(opt.Scale, opt.Seed)
	rt := RuntimeFor(data.SVHN, opt.Scale)
	alloc := data.DefaultAlloc(opt.Seed + 1)
	if opt.Scale == data.CI {
		alloc = data.CIAlloc(opt.Seed + 1)
	}
	opt.tune(&rt)
	seqs := data.Federate(tasks, rt.Clients, alloc)
	cluster := device.Jetson20()

	res := &HyperResult{Best: map[string]float64{}}
	for _, lr := range lrs {
		for _, decay := range decays {
			rt := rt
			rt.LR = lr
			rt.LRDecay = decay
			r := runOne(method, opt, rt, fixedCluster{cluster}, seqs, ds.NumClasses, "SixCNN", ds)
			res.Searched++
			acc := r.PerTask[len(r.PerTask)-1].AvgAccuracy
			fmt.Fprintf(opt.out(), "hyper %s lr=%g decay=%g → acc %.4f\n", method, lr, decay, acc)
			if acc > res.BestAcc {
				res.BestAcc = acc
				res.Best["lr"] = lr
				res.Best["decay"] = decay
			}
		}
	}
	return res, nil
}
