package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
)

// clusterLike lets experiments defer cluster construction.
type clusterLike interface{ cluster() *device.Cluster }

type fixedCluster struct{ c *device.Cluster }

func (f fixedCluster) cluster() *device.Cluster { return f.c }

// Series is one plotted line: label plus (x, y) points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table is one printed table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// PrintSeries renders series as aligned columns of x/y pairs.
func PrintSeries(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	for _, s := range series {
		fmt.Fprintf(w, "%s:\n", s.Label)
		for i := range s.X {
			fmt.Fprintf(w, "  x=%-10.4f y=%.4f\n", s.X[i], s.Y[i])
		}
	}
}

// Options selects experiment scale, determinism, and parallelism.
type Options struct {
	Scale data.Scale
	Seed  uint64
	Out   io.Writer
	// Tune, when set, adjusts the derived runtime before the run (tests and
	// benches use it to shrink rounds/iterations further than CI defaults).
	Tune func(*Runtime)
	// Parallelism bounds concurrently-training clients inside the federated
	// engine; 0 means GOMAXPROCS. Results are deterministic regardless.
	Parallelism int
	// KernelThreads bounds the tensor-kernel worker pool (GEMM row blocks,
	// conv batch parallelism); 0 keeps the current process-wide setting.
	// The pool is shared across clients and bounds the *extra* kernel
	// goroutines: each training client also executes kernel work inline,
	// so up to Parallelism + KernelThreads − 1 goroutines may run kernels
	// at once. Results are bitwise identical for every setting.
	KernelThreads int
	// Observer, when set, streams every engine run's per-round and per-task
	// progress (CLIs print live rows; dashboards can tail a long Full-scale
	// run). It does not affect results.
	Observer fed.RoundObserver
	// Scheduler selects the federation's round-scheduling policy ("sync",
	// the default, or "async"); it changes results — see fed.Config.
	Scheduler string
	// SyncEvict lets the sync scheduler evict a dropped client instead of
	// aborting; it changes results — see fed.Config.SyncEvict. Ignored
	// under the async scheduler (which always evicts).
	SyncEvict bool
	// AsyncCommitK / MaxStaleness / StalenessAlpha configure the async
	// scheduler (fed.AsyncConfig); ignored under the sync scheduler.
	AsyncCommitK   int
	MaxStaleness   int
	StalenessAlpha float64
	// Shards partitions the server's aggregation fold across concurrent
	// per-shard reducers; results are bitwise identical for every value —
	// see fed.Config.Shards. 0 or 1 keeps the single-loop default.
	Shards int
}

// applyScheduler copies the scheduling-policy knobs into an engine config.
func (o Options) applyScheduler(cfg *fed.Config) {
	cfg.Scheduler = o.Scheduler
	cfg.SyncEvict = o.SyncEvict
	cfg.Async = fed.AsyncConfig{
		CommitEvery:    o.AsyncCommitK,
		MaxStaleness:   o.MaxStaleness,
		StalenessAlpha: o.StalenessAlpha,
	}
	cfg.Shards = o.Shards
}

// tune applies the optional runtime adjustment.
func (o Options) tune(rt *Runtime) {
	if o.Tune != nil {
		o.Tune(rt)
	}
}

// out returns a usable writer.
func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// gb converts bytes to gigabytes.
func gb(bytes int64) float64 { return float64(bytes) / (1 << 30) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f6 formats a float with six decimals (byte volumes in GB at CI scale are
// tiny).
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }

// pct formats a ratio as a percentage with two decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
