package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/data"
)

func ciOpts(seed uint64) Options {
	return Options{Scale: data.CI, Seed: seed}
}

func TestRuntimeForFullMatchesPaper(t *testing.T) {
	rt := RuntimeFor(data.CIFAR100, data.Full)
	if rt.Clients != 20 || rt.Rounds != 15 || rt.LocalIters != 25 {
		t.Fatalf("CIFAR100 full runtime %+v", rt)
	}
	if rt.LR != 0.001 || rt.LRDecay != 1e-4 {
		t.Fatalf("CIFAR100 lr %v decay %v", rt.LR, rt.LRDecay)
	}
	rtT := RuntimeFor(data.TinyImageNet, data.Full)
	if rtT.Rounds != 5 || rtT.LR != 0.0008 || rtT.LRDecay != 1e-5 {
		t.Fatalf("TinyImageNet full runtime %+v", rtT)
	}
}

func TestArchSelection(t *testing.T) {
	if archFor(data.CIFAR100) != "SixCNN" || archFor(data.CORe50) != "SixCNN" {
		t.Fatal("first three datasets use the 6-layer CNN")
	}
	if archFor(data.MiniImageNet) != "ResNet18" || archFor(data.TinyImageNet) != "ResNet18" {
		t.Fatal("ImageNet variants use ResNet-18")
	}
}

func TestMethodFactoryCoversAllMethods(t *testing.T) {
	if len(AllMethods) != 12 {
		t.Fatalf("%d methods, want 12 (FedKNOW + 11 baselines)", len(AllMethods))
	}
	for _, m := range AllMethods {
		if MethodFactory(m, data.CI) == nil {
			t.Fatalf("no factory for %s", m)
		}
	}
}

func TestFig4UnknownPanel(t *testing.T) {
	if _, err := Fig4("z", ciOpts(1)); err == nil {
		t.Fatal("unknown panel must error")
	}
}

func TestFig4MixedPanelStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	var buf bytes.Buffer
	opt := ciOpts(2)
	opt.Out = &buf
	res, err := Fig4("d", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 3 {
		t.Fatalf("30-device panel compares 3 methods, got %d", len(res.Methods))
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.X) != 10 { // CIFAR100 keeps 10 tasks at CI scale
			t.Fatalf("series %s has %d points", s.Label, len(s.X))
		}
		// Time axis must be increasing.
		for i := 1; i < len(s.X); i++ {
			if s.X[i] <= s.X[i-1] {
				t.Fatalf("series %s time axis not increasing", s.Label)
			}
		}
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("accuracy %v out of range", y)
			}
		}
	}
	if !strings.Contains(buf.String(), "Fig.4(d)") {
		t.Fatal("printer did not emit the panel")
	}
}

func TestFig5ShapeAndReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	res, err := Fig5(ciOpts(3), []data.Family{data.CIFAR100, data.FC100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 2 {
		t.Fatalf("datasets %v", res.Datasets)
	}
	for _, d := range res.Datasets {
		fk := res.VolumeGB[d]["FedKNOW"]
		fw := res.VolumeGB[d]["FedWEIT"]
		if fk <= 0 || fw <= 0 {
			t.Fatalf("%s volumes %v / %v", d, fk, fw)
		}
		// The paper's headline: FedWEIT moves more data than FedKNOW.
		if fw <= fk {
			t.Fatalf("%s: FedWEIT (%v GB) must exceed FedKNOW (%v GB)", d, fw, fk)
		}
	}
	if res.MeanReduction() <= 0 {
		t.Fatal("mean reduction must be positive")
	}
}

func TestFig6BandwidthScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	res, err := Fig6(ciOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, mdl := range []string{"6CNN", "ResNet18"} {
		for _, m := range []string{"FedKNOW", "FedWEIT"} {
			hours := res.Hours[mdl][m]
			if len(hours) != 8 {
				t.Fatalf("%s/%s: %d points", mdl, m, len(hours))
			}
			// Communication time decreases as bandwidth grows.
			for i := 1; i < len(hours); i++ {
				if hours[i] >= hours[i-1] {
					t.Fatalf("%s/%s: hours not decreasing with bandwidth", mdl, m)
				}
			}
		}
		// FedKNOW communicates less at every bandwidth.
		for i := range res.Hours[mdl]["FedKNOW"] {
			if res.Hours[mdl]["FedKNOW"][i] >= res.Hours[mdl]["FedWEIT"][i] {
				t.Fatalf("%s: FedKNOW must beat FedWEIT at every bandwidth", mdl)
			}
		}
	}
}

func TestFig7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	res, err := Fig7(ciOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTasks != 10 {
		t.Fatalf("CI task count = %d", res.NumTasks)
	}
	if len(res.Accuracy) != 3 || len(res.Forgetting) != 3 {
		t.Fatal("three methods expected")
	}
	for _, s := range res.Accuracy {
		if len(s.Y) != 10 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Y))
		}
	}
	for _, s := range res.Forgetting {
		for _, f := range s.Y {
			if f < 0 || f > 1 {
				t.Fatalf("forgetting %v out of range", f)
			}
		}
	}
}

func TestFig10SettingsComplete(t *testing.T) {
	settings := fig10Settings(data.CI)
	labels := map[string]bool{}
	for _, s := range settings {
		labels[s.Label] = true
	}
	for _, want := range []string{"GEM-10%", "GEM-100%", "FedWEIT-all", "FedWEIT-own",
		"FedKNOW-5%", "FedKNOW-10%", "FedKNOW-20%"} {
		if !labels[want] {
			t.Fatalf("missing setting %s", want)
		}
	}
}

// fast shrinks a CI runtime to the minimum that still exercises the
// protocol, for the heavyweight sweeps.
func fast(rt *Runtime) {
	rt.Rounds = 1
	rt.LocalIters = 2
	rt.Clients = 3
}

func TestTable1Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	opt := ciOpts(7)
	opt.Tune = fast
	res, err := Table1(opt, []data.Family{data.CIFAR100})
	if err != nil {
		t.Fatal(err)
	}
	imp := res.Improvement["CIFAR100"]
	if len(imp) != 10 {
		t.Fatalf("%d per-task improvements", len(imp))
	}
	if len(res.Table.Rows) != 10 {
		t.Fatalf("%d table rows", len(res.Table.Rows))
	}
	// MeanImprovement must agree with the raw slice.
	var s float64
	for _, v := range imp {
		s += v
	}
	if got := res.MeanImprovement("CIFAR100"); got != s/10 {
		t.Fatalf("MeanImprovement %v vs %v", got, s/10)
	}
}

func TestFig8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	opt := ciOpts(8)
	opt.Tune = fast
	res, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClientCounts) != 2 || len(res.Accuracy) != 2 {
		t.Fatal("two cluster scales expected")
	}
	for i := range res.ClientCounts {
		if len(res.Accuracy[i]) != 3 || len(res.Forgetting[i]) != 3 {
			t.Fatalf("scale %d: method series missing", i)
		}
	}
}

func TestFig9SubsetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	opt := ciOpts(9)
	opt.Tune = fast
	res, err := Fig9(opt, []string{"MobileNetV2", "SENet18"})
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range res.Models {
		for _, m := range res.Methods {
			if res.FinalAccuracy(arch, m) < 0 {
				t.Fatalf("%s/%s missing accuracy", arch, m)
			}
			if len(res.Series[arch][m].Y) != 10 {
				t.Fatalf("%s/%s series wrong length", arch, m)
			}
		}
	}
}

func TestHyperSearchFindsConfig(t *testing.T) {
	res, err := HyperSearch("FedAvg", ciOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Searched != 4 {
		t.Fatalf("CI grid is 2×2, searched %d", res.Searched)
	}
	if res.Best["lr"] == 0 {
		t.Fatal("no best lr selected")
	}
	if res.BestAcc <= 0 {
		t.Fatal("best accuracy must be positive")
	}
}

func TestAblationStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full federated training run; skipped in -short")
	}
	opt := ciOpts(10)
	opt.Tune = fast
	res, err := Ablation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("%d variants", len(res.Variants))
	}
	for _, v := range res.Variants {
		if res.Accuracy[v] <= 0 {
			t.Fatalf("variant %s has no accuracy", v)
		}
	}
}
