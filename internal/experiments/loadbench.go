package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fed"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// LoadBenchOptions size the cohort-scale load measurement: scripted wire
// peers (no real training) hammering one asynchronous server process so the
// aggregation fold — not SGD — is the bottleneck being measured.
type LoadBenchOptions struct {
	// Clients is the cohort size (default 16).
	Clients int
	// Rounds is the number of updates each client uploads (default 30).
	Rounds int
	// N is the parameter-vector length (default 65536).
	N int
	// Density is the fraction of coordinates each client's sparse update
	// touches (default 0.05). Masks are distinct per client, so the round
	// union grows the way ρ-pruned knowledge deltas do in a real cohort.
	Density float64
	// CommitEvery is the async scheduler's K (default: the cohort size).
	CommitEvery int
	// Shards is the sharded mode's reducer count (default: GOMAXPROCS,
	// floored at 2 so the mode is sharded even on a single-core box).
	Shards int
	Seed   uint64
	// Logf receives the servers' operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o *LoadBenchOptions) defaults() {
	if o.Clients == 0 {
		o.Clients = 16
	}
	if o.Rounds == 0 {
		o.Rounds = 30
	}
	if o.N == 0 {
		o.N = 1 << 16
	}
	if o.Density == 0 {
		o.Density = 0.05
	}
	if o.CommitEvery == 0 {
		o.CommitEvery = o.Clients
	}
	if o.Shards == 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards < 2 {
			o.Shards = 2
		}
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// LoadModePoint is one aggregator configuration's throughput measurements.
type LoadModePoint struct {
	Shards     int    `json:"shards"`
	Aggregator string `json:"aggregator"`
	// Updates is the number of uploads the server folded; Commits the number
	// of global-model versions it published.
	Updates int `json:"updates"`
	Commits int `json:"commits"`
	// WallSeconds is the whole cohort run, dial to final RoundEnd.
	WallSeconds   float64 `json:"wall_seconds"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	CommitsPerSec float64 `json:"commits_per_sec"`
	// FoldP50Micros / FoldP99Micros are percentiles of the per-update
	// Accumulate latency, measured around the aggregator fold alone (no
	// decode, no broadcast).
	FoldP50Micros float64 `json:"fold_p50_micros"`
	FoldP99Micros float64 `json:"fold_p99_micros"`
}

// LoadBenchReport is the BENCH_throughput.json payload: the single-loop and
// sharded aggregation folds under an identical scripted cohort, plus the
// determinism pin's verdict.
type LoadBenchReport struct {
	Cores       int     `json:"cores"`
	Clients     int     `json:"clients"`
	Rounds      int     `json:"rounds"`
	N           int     `json:"n"`
	Density     float64 `json:"density"`
	CommitEvery int     `json:"commit_every"`
	Seed        uint64  `json:"seed"`
	// Deterministic records that LoadDeterminismPin held for this build:
	// sharded and single-loop folds agreed bitwise across shard and
	// kernel-thread counts. The harness refuses to write a report when the
	// pin fails, so a committed report always says true.
	Deterministic bool            `json:"deterministic"`
	Modes         []LoadModePoint `json:"modes"`
	// Speedup is sharded updates/sec over single-loop updates/sec.
	Speedup float64 `json:"speedup"`
	// MinSpeedup, when set in a committed baseline, is the gate Compare
	// enforces: a run whose Speedup falls below it fails. Baselines from
	// single-core builders pin ~0.75 (no parallel win to demand, but a
	// sharded fold that COSTS a third of the throughput is a regression);
	// multi-core baselines pin the honest parallel win (≥ 2 at 4+ cores).
	MinSpeedup float64 `json:"min_speedup,omitempty"`
}

// loadSparse draws a distinct ascending k-coordinate mask for one client.
func loadSparse(rng *tensor.RNG, n int, density float64) *tensor.SparseVec {
	k := int(float64(n) * density)
	if k < 1 {
		k = 1
	}
	idx := rng.Perm(n)[:k]
	sort.Ints(idx)
	sv := &tensor.SparseVec{N: n, Indices: make([]int32, k), Values: make([]float32, k)}
	for i, j := range idx {
		sv.Indices[i] = int32(j)
	}
	rng.FillNorm(sv.Values, 0.05)
	return sv
}

// foldTimer wraps a streaming aggregator and records each Accumulate's
// latency in microseconds. The async scheduler folds on one goroutine, but
// the recorder locks anyway so the wrapper has no hidden contract.
type foldTimer struct {
	inner fed.StreamAggregator
	mu    sync.Mutex
	folds []float64
}

func (a *foldTimer) Name() string                              { return a.inner.Name() }
func (a *foldTimer) Aggregate(updates []*fed.Update) []float32 { return a.inner.Aggregate(updates) }
func (a *foldTimer) BeginRound()                               { a.inner.BeginRound() }
func (a *foldTimer) FinishRound() []float32                    { return a.inner.FinishRound() }

// samples returns the recorded latencies under the lock; callers only read
// after the run ends, but going through the lock keeps that contract out of
// the callers' heads.
func (a *foldTimer) samples() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.folds
}

func (a *foldTimer) Accumulate(u *fed.Update) {
	start := time.Now()
	a.inner.Accumulate(u)
	micros := float64(time.Since(start).Nanoseconds()) / 1e3
	a.mu.Lock()
	a.folds = append(a.folds, micros)
	a.mu.Unlock()
}

// runLoadPeer scripts one wire client: dial, swallow the task's RoundStart,
// upload rounds copies of its sparse update (BaseVersion tracking the
// latest broadcast so nothing is ever stale), then acknowledge the
// task-final broadcast with a unit evaluation. A reader goroutine drains
// every broadcast as it lands — the discipline that makes small, bounded
// server-side send buffers deadlock-free.
func runLoadPeer(addr string, id, rounds int, sv *tensor.SparseVec) error {
	tr, err := fed.DialWith(addr, id, 0, fed.WireOptions{})
	if err != nil {
		return fmt.Errorf("client %d: %w", id, err)
	}
	defer tr.Close()
	msg, err := tr.Recv()
	if err != nil {
		return fmt.Errorf("client %d: %w", id, err)
	}
	if _, ok := msg.(*fed.RoundStart); !ok {
		return fmt.Errorf("client %d: got %T, want *fed.RoundStart", id, msg)
	}
	var latest atomic.Uint64
	taskFinal := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		for {
			msg, err := tr.Recv()
			if err != nil {
				readErr <- err
				return
			}
			gm, ok := msg.(*fed.GlobalModel)
			if !ok {
				readErr <- fmt.Errorf("got %T, want *fed.GlobalModel", msg)
				return
			}
			latest.Store(gm.Version)
			if gm.TaskFinal {
				close(taskFinal)
				return
			}
		}
	}()
	for r := 0; r < rounds; r++ {
		u := &fed.Update{ClientID: id, Participating: true, Weight: 1,
			Sparse: sv, BaseVersion: latest.Load()}
		if err := tr.Send(u); err != nil {
			return fmt.Errorf("client %d upload %d: %w", id, r, err)
		}
	}
	select {
	case <-taskFinal:
	case err := <-readErr:
		return fmt.Errorf("client %d: %w", id, err)
	}
	if err := tr.Send(&fed.RoundEnd{ClientID: id, EvalAccs: []float64{1}}); err != nil {
		return fmt.Errorf("client %d round-end: %w", id, err)
	}
	// Linger until the server tears the link down at run end: closing first
	// would make the server log a (harmless but noisy) eviction for a client
	// whose work is already fully accounted.
	tr.Recv()
	return nil
}

// runLoadMode drives one full cohort — TCP listener, asynchronous server,
// Clients scripted peers — against the given shard count and returns its
// throughput point.
func runLoadMode(opt LoadBenchOptions, shards int) (LoadModePoint, error) {
	var point LoadModePoint
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return point, err
	}
	addr := ln.Addr().String()
	errs := make(chan error, opt.Clients)
	start := time.Now()
	for id := 0; id < opt.Clients; id++ {
		rng := tensor.NewRNG(opt.Seed).Fork(uint64(id))
		sv := loadSparse(rng, opt.N, opt.Density)
		go func(id int) { errs <- runLoadPeer(addr, id, opt.Rounds, sv) }(id)
	}
	links, err := fed.ServeWith(ln, opt.Clients, 0, fed.WireOptions{})
	ln.Close()
	if err != nil {
		return point, err
	}
	var inner fed.StreamAggregator
	if shards > 1 {
		inner = fed.NewShardedFedAvg(shards)
	} else {
		inner = &fed.SparseFedAvg{}
	}
	timer := &foldTimer{inner: inner}
	srv := fed.NewServer(fed.ServerConfig{
		Method: "load", NumTasks: 1, Rounds: opt.Rounds,
		Scheduler: fed.SchedulerAsync,
		Async:     fed.AsyncConfig{CommitEvery: opt.CommitEvery},
		Seed:      opt.Seed, Logf: opt.Logf,
	}, timer, links)
	commits := 0
	srv.SetObserver(fed.ObserverFuncs{Round: func(s fed.RoundStats) { commits++ }})
	if _, err := srv.Run(context.Background()); err != nil {
		return point, fmt.Errorf("server (shards=%d): %w", shards, err)
	}
	wall := time.Since(start).Seconds()
	for i := 0; i < opt.Clients; i++ {
		if err := <-errs; err != nil {
			return point, err
		}
	}
	folds := timer.samples()
	point = LoadModePoint{
		Shards:        shards,
		Aggregator:    inner.Name(),
		Updates:       len(folds),
		Commits:       commits,
		WallSeconds:   wall,
		UpdatesPerSec: float64(len(folds)) / wall,
		CommitsPerSec: float64(commits) / wall,
		FoldP50Micros: stats.Percentile(folds, 0.50),
		FoldP99Micros: stats.Percentile(folds, 0.99),
	}
	return point, nil
}

// RunLoadBench measures the aggregation fold under cohort-scale load: the
// same scripted wire cohort is run once against the single-loop
// SparseFedAvg and once against ShardedFedAvg at opt.Shards, and the two
// throughput points plus their updates/sec ratio become the report. The
// determinism pin runs first — a build whose sharded fold is not bitwise
// identical to the single loop has no business publishing throughput
// numbers for it.
func RunLoadBench(opt LoadBenchOptions) (*LoadBenchReport, error) {
	opt.defaults()
	if err := LoadDeterminismPin(4096, opt.Seed); err != nil {
		return nil, err
	}
	rep := &LoadBenchReport{
		Cores: runtime.GOMAXPROCS(0), Clients: opt.Clients, Rounds: opt.Rounds,
		N: opt.N, Density: opt.Density, CommitEvery: opt.CommitEvery,
		Seed: opt.Seed, Deterministic: true,
	}
	single, err := runLoadMode(opt, 1)
	if err != nil {
		return nil, err
	}
	sharded, err := runLoadMode(opt, opt.Shards)
	if err != nil {
		return nil, err
	}
	rep.Modes = []LoadModePoint{single, sharded}
	if single.UpdatesPerSec > 0 {
		rep.Speedup = sharded.UpdatesPerSec / single.UpdatesPerSec
	}
	return rep, nil
}

// LoadDeterminismPin replays one canned multi-round update sequence — mixed
// sparse masks plus a dense straggler, the worst case for fold ordering —
// through the single-loop SparseFedAvg and through ShardedFedAvg at shard
// counts {1, 2, 8} under kernel-thread budgets {1, 4}, and fails unless
// every committed vector is bitwise identical to the single-loop reference.
// This is the acceptance path a single-core builder relies on: it proves
// the sharded fold safe to enable even when no parallel speedup is
// measurable. It resets the kernel-thread budget to the default on return.
func LoadDeterminismPin(n int, seed uint64) error {
	defer tensor.SetKernelThreads(0)
	const rounds, clients = 3, 5
	updates := make([][]*fed.Update, rounds)
	for r := range updates {
		for c := 0; c < clients; c++ {
			rng := tensor.NewRNG(seed).Fork(uint64(r*clients + c + 1))
			u := &fed.Update{ClientID: c, Participating: true, Weight: float64(1 + c)}
			if c == clients-1 {
				u.Params = make([]float32, n)
				rng.FillNorm(u.Params, 0.05)
			} else {
				u.Sparse = loadSparse(rng, n, 0.02*float64(c+1))
			}
			updates[r] = append(updates[r], u)
		}
	}
	fold := func(agg fed.StreamAggregator) [][]float32 {
		out := make([][]float32, rounds)
		for r, ups := range updates {
			agg.BeginRound()
			for _, u := range ups {
				agg.Accumulate(u)
			}
			out[r] = append([]float32(nil), agg.FinishRound()...)
		}
		return out
	}
	tensor.SetKernelThreads(1)
	ref := fold(&fed.SparseFedAvg{})
	for _, threads := range []int{1, 4} {
		tensor.SetKernelThreads(threads)
		for _, shards := range []int{1, 2, 8} {
			got := fold(fed.NewShardedFedAvg(shards))
			for r := range ref {
				if len(got[r]) != len(ref[r]) {
					return fmt.Errorf("determinism pin: shards=%d threads=%d round %d folded %d params, want %d",
						shards, threads, r, len(got[r]), len(ref[r]))
				}
				for j := range ref[r] {
					if got[r][j] != ref[r][j] {
						return fmt.Errorf("determinism pin: shards=%d threads=%d round %d diverges at coordinate %d: %v != %v",
							shards, threads, r, j, got[r][j], ref[r][j])
					}
				}
			}
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON to path.
func (r *LoadBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadLoadBench loads a report written by WriteJSON.
func ReadLoadBench(path string) (*LoadBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r LoadBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Print renders the report as an aligned table.
func (r *LoadBenchReport) Print(w io.Writer) {
	fmt.Fprintf(w, "cohort load bench: clients=%d rounds=%d n=%d density=%.3f K=%d cores=%d deterministic=%v\n",
		r.Clients, r.Rounds, r.N, r.Density, r.CommitEvery, r.Cores, r.Deterministic)
	t := &Table{Title: "throughput", Header: []string{"aggregator", "shards", "updates/s", "commits/s", "fold p50 µs", "fold p99 µs", "wall s"}}
	for _, m := range r.Modes {
		t.Rows = append(t.Rows, []string{
			m.Aggregator, fmt.Sprint(m.Shards),
			fmt.Sprintf("%.0f", m.UpdatesPerSec), fmt.Sprintf("%.1f", m.CommitsPerSec),
			fmt.Sprintf("%.0f", m.FoldP50Micros), fmt.Sprintf("%.0f", m.FoldP99Micros),
			fmt.Sprintf("%.2f", m.WallSeconds),
		})
	}
	t.Print(w)
	fmt.Fprintf(w, "sharded/single updates-per-second: %.2fx\n", r.Speedup)
}

// Compare gates this run against a committed baseline: the cohort shapes
// must match (a throughput ratio between different workloads means
// nothing), and the measured speedup must not fall below the baseline's
// MinSpeedup (minOverride, when positive, replaces it — the CI knob for
// builders whose core count differs from the baseline's). Absolute
// updates/sec are printed for trend-watching but never fail — hardware
// varies; the speedup is the hardware-relative signal worth gating.
func (r *LoadBenchReport) Compare(base *LoadBenchReport, minOverride float64, w io.Writer) error {
	fmt.Fprintf(w, "\n== vs baseline ==\n")
	if r.Clients != base.Clients || r.Rounds != base.Rounds || r.N != base.N ||
		r.Density != base.Density || r.CommitEvery != base.CommitEvery {
		return fmt.Errorf("baseline shape mismatch: clients/rounds/n/density/K = %d/%d/%d/%g/%d vs baseline %d/%d/%d/%g/%d — regenerate the baseline",
			r.Clients, r.Rounds, r.N, r.Density, r.CommitEvery,
			base.Clients, base.Rounds, base.N, base.Density, base.CommitEvery)
	}
	baseModes := map[int]LoadModePoint{}
	for _, m := range base.Modes {
		baseModes[m.Shards] = m
	}
	for _, m := range r.Modes {
		if b, ok := baseModes[m.Shards]; ok && b.UpdatesPerSec > 0 {
			fmt.Fprintf(w, "%-14s shards=%-3d updates/s %.0f → %.0f (%.2fx)\n",
				m.Aggregator, m.Shards, b.UpdatesPerSec, m.UpdatesPerSec, m.UpdatesPerSec/b.UpdatesPerSec)
		}
	}
	min := base.MinSpeedup
	if minOverride > 0 {
		min = minOverride
	}
	fmt.Fprintf(w, "speedup %.2fx (baseline %.2fx, floor %.2fx)\n", r.Speedup, base.Speedup, min)
	if min > 0 && r.Speedup < min {
		return fmt.Errorf("sharded aggregation speedup %.2fx fell below the %.2fx floor: fold regression (or regenerate the baseline deliberately)",
			r.Speedup, min)
	}
	return nil
}
