package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

// AsyncBenchOptions size the scheduler comparison. The zero value runs the
// headline configuration: 8 clients of which one is a straggler, so the
// synchronous round is bound by the slow device while the asynchronous
// commit loop keeps pace with the fast ones.
type AsyncBenchOptions struct {
	// Clients is the cohort size (default 8).
	Clients int
	// Straggler is how many times slower the one slow device is (default
	// 10; 1 disables the straggler).
	Straggler float64
	// Tasks / Rounds / LocalIters shape the run (defaults 2 / 6 / 2).
	Tasks      int
	Rounds     int
	LocalIters int
	// CommitK is the async scheduler's K (default Clients/2).
	CommitK int
	// MaxStaleness / StalenessAlpha are the async staleness knobs, passed
	// through as-is (0 = unbounded / no deweighting, as everywhere else).
	MaxStaleness   int
	StalenessAlpha float64
	Seed           uint64
}

// SchedulerPoint is one scheduling policy's measurements over the same
// workload.
type SchedulerPoint struct {
	Scheduler string `json:"scheduler"`
	// Commits is the number of global-model commits over the run (one per
	// round under sync, one per K accepted updates under async).
	Commits int `json:"commits"`
	// SimHours is the simulated wall-clock of the whole run: per-round
	// worst-participant time under sync, the slowest client's own
	// accumulated time under async.
	SimHours float64 `json:"sim_hours"`
	// SimSecondsPerCommit is the headline metric: simulated seconds of run
	// time per committed global model — how long edge devices wait between
	// fresh globals. Deterministic (device model), unlike wall-clock.
	SimSecondsPerCommit float64 `json:"sim_seconds_per_commit"`
	// WallMsPerCommit is the host's real milliseconds per commit —
	// informational only, it varies with CI hardware.
	WallMsPerCommit float64 `json:"wall_ms_per_commit"`
	// StaleRejected counts updates dropped by the staleness bound.
	StaleRejected int `json:"stale_rejected"`
	// AvgAccuracy is the final task point's average accuracy, to show the
	// schedulers land in the same quality regime.
	AvgAccuracy float64 `json:"avg_accuracy"`
	UpBytes     int64   `json:"up_bytes"`
}

// AsyncBenchReport is the BENCH_async.json payload: the same federated
// workload under the synchronous and asynchronous schedulers, with one
// straggler in the cohort.
type AsyncBenchReport struct {
	Clients   int            `json:"clients"`
	Straggler float64        `json:"straggler_factor"`
	Tasks     int            `json:"tasks"`
	Rounds    int            `json:"rounds"`
	CommitK   int            `json:"commit_k"`
	Sync      SchedulerPoint `json:"sync"`
	Async     SchedulerPoint `json:"async"`
	// SpeedupPerCommit is Sync.SimSecondsPerCommit /
	// Async.SimSecondsPerCommit — how much faster fresh globals reach the
	// cohort under asynchronous scheduling.
	SpeedupPerCommit float64 `json:"speedup_per_commit"`
}

// AsyncBench runs the same synthetic federation under both schedulers and
// measures the time per global-model commit. The cohort has one straggler
// (Straggler× slower device): synchronously every round waits for it;
// asynchronously it only dilutes one update per K.
func AsyncBench(opt AsyncBenchOptions) *AsyncBenchReport {
	if opt.Clients == 0 {
		opt.Clients = 8
	}
	if opt.Straggler == 0 {
		opt.Straggler = 10
	}
	if opt.Tasks == 0 {
		opt.Tasks = 2
	}
	if opt.Rounds == 0 {
		opt.Rounds = 6
	}
	if opt.LocalIters == 0 {
		opt.LocalIters = 2
	}
	if opt.CommitK == 0 {
		opt.CommitK = opt.Clients / 2
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}

	ds := data.Generate(data.Config{Name: "asyncbench", NumClasses: 16,
		TrainPerClass: 12, TestPerClass: 4, C: 3, H: 12, W: 12, Noise: 0.3,
		Seed: opt.Seed})
	tasks := data.SplitTasks(ds, opt.Tasks)
	seqs := data.Federate(tasks, opt.Clients, data.CIAlloc(opt.Seed+1))
	// 1-straggler-in-N device distribution: client 0 runs on the slow
	// device, everyone else on the fast one.
	fast := device.Device{Name: "edge", FLOPS: 1e9, MemBytes: 1 << 40}
	slow := fast
	slow.Name = "straggler"
	slow.FLOPS = fast.FLOPS / opt.Straggler
	devices := make([]device.Device, opt.Clients)
	for i := range devices {
		devices[i] = fast
	}
	devices[0] = slow
	cluster := &device.Cluster{Devices: devices}

	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild("SixCNN", ds.NumClasses, ds.C, ds.H, ds.W, 1, rng)
	}
	run := func(sched string) SchedulerPoint {
		cfg := fed.Config{
			Method: "FedAvg", Rounds: opt.Rounds, LocalIters: opt.LocalIters,
			BatchSize: 8, LR: 0.02, LRDecay: 1e-4, NumClasses: ds.NumClasses,
			Bandwidth: 1 << 20, Seed: opt.Seed, Scheduler: sched,
		}
		if sched == fed.SchedulerAsync {
			cfg.Async = fed.AsyncConfig{
				CommitEvery:    opt.CommitK,
				MaxStaleness:   opt.MaxStaleness,
				StalenessAlpha: opt.StalenessAlpha,
			}
		}
		e := fed.NewEngine(cfg, cluster, seqs, build, MethodFactory("FedAvg", data.CI))
		p := SchedulerPoint{Scheduler: sched}
		e.SetObserver(fed.ObserverFuncs{Round: func(s fed.RoundStats) {
			// A zero-participant RoundStats is the async task-closing
			// stale-tail report, not a commit — count only real commits.
			if s.Participants > 0 {
				p.Commits++
			}
			p.StaleRejected += s.Stale
		}})
		start := time.Now()
		res := e.Run()
		wall := time.Since(start)
		last := res.PerTask[len(res.PerTask)-1]
		p.SimHours = last.SimHours
		p.AvgAccuracy = last.AvgAccuracy
		p.UpBytes = last.UpBytes
		if p.Commits > 0 {
			p.SimSecondsPerCommit = last.SimHours * 3600 / float64(p.Commits)
			p.WallMsPerCommit = float64(wall.Milliseconds()) / float64(p.Commits)
		}
		return p
	}

	rep := &AsyncBenchReport{
		Clients: opt.Clients, Straggler: opt.Straggler,
		Tasks: opt.Tasks, Rounds: opt.Rounds, CommitK: opt.CommitK,
	}
	rep.Sync = run(fed.SchedulerSync)
	rep.Async = run(fed.SchedulerAsync)
	if rep.Async.SimSecondsPerCommit > 0 {
		rep.SpeedupPerCommit = rep.Sync.SimSecondsPerCommit / rep.Async.SimSecondsPerCommit
	}
	return rep
}

// WriteJSON writes the report as indented JSON to path.
func (r *AsyncBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Print renders the report as an aligned table.
func (r *AsyncBenchReport) Print(w io.Writer) {
	fmt.Fprintf(w, "async scheduler bench: %d clients (1 straggler, %gx slower), %d tasks x %d rounds, K=%d\n",
		r.Clients, r.Straggler, r.Tasks, r.Rounds, r.CommitK)
	tb := &Table{Title: "time per global-model commit",
		Header: []string{"scheduler", "commits", "sim-hours", "sim-sec/commit", "wall-ms/commit", "stale-rejected", "avg-acc"}}
	for _, p := range []SchedulerPoint{r.Sync, r.Async} {
		tb.Rows = append(tb.Rows, []string{
			p.Scheduler, fmt.Sprint(p.Commits), fmt.Sprintf("%.4f", p.SimHours),
			fmt.Sprintf("%.2f", p.SimSecondsPerCommit), fmt.Sprintf("%.1f", p.WallMsPerCommit),
			fmt.Sprint(p.StaleRejected), fmt.Sprintf("%.4f", p.AvgAccuracy),
		})
	}
	tb.Print(w)
	fmt.Fprintf(w, "speedup (sim-sec/commit, sync ÷ async): %.2fx\n", r.SpeedupPerCommit)
}
