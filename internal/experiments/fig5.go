package experiments

import (
	"repro/internal/data"
	"repro/internal/device"
)

// Fig5Result is the total communication volume comparison (Fig. 5):
// FedKNOW vs FedWEIT on each workload, in GB of up+down traffic.
type Fig5Result struct {
	Datasets []string
	VolumeGB map[string]map[string]float64 // dataset → method → GB
	Table    *Table
}

// Fig5 measures total communication volume for both methods across the
// requested datasets (nil = all five).
func Fig5(opt Options, datasets []data.Family) (*Fig5Result, error) {
	if datasets == nil {
		datasets = data.Families
	}
	methods := []string{"FedKNOW", "FedWEIT"}
	res := &Fig5Result{VolumeGB: map[string]map[string]float64{}}
	for _, fam := range datasets {
		ds, tasks := fam.Build(opt.Scale, opt.Seed)
		rt := RuntimeFor(fam, opt.Scale)
		arch := archFor(fam)
		alloc := data.DefaultAlloc(opt.Seed + 1)
		if opt.Scale == data.CI {
			alloc = data.CIAlloc(opt.Seed + 1)
		} else {
			rt.Clients = 20
		}
		cluster := device.Jetson20()
		opt.tune(&rt)
		seqs := data.Federate(tasks, rt.Clients, alloc)

		res.Datasets = append(res.Datasets, fam.Name)
		res.VolumeGB[fam.Name] = map[string]float64{}
		for _, m := range methods {
			r := runOne(m, opt, rt, fixedCluster{cluster}, seqs, ds.NumClasses, arch, ds)
			last := r.PerTask[len(r.PerTask)-1]
			res.VolumeGB[fam.Name][m] = gb(last.UpBytes + last.DownBytes)
		}
	}
	tbl := &Table{
		Title:  "Fig.5: total communication volume (GB)",
		Header: []string{"Dataset", "FedKNOW", "FedWEIT", "reduction"},
	}
	for _, d := range res.Datasets {
		fk := res.VolumeGB[d]["FedKNOW"]
		fw := res.VolumeGB[d]["FedWEIT"]
		red := 0.0
		if fw > 0 {
			red = (fw - fk) / fw
		}
		tbl.Rows = append(tbl.Rows, []string{d, f6(fk), f6(fw), pct(red)})
	}
	res.Table = tbl
	tbl.Print(opt.out())
	return res, nil
}

// MeanReduction is FedKNOW's average communication saving versus FedWEIT
// across datasets (the paper reports 34.28 %).
func (r *Fig5Result) MeanReduction() float64 {
	var s float64
	n := 0
	for _, d := range r.Datasets {
		fw := r.VolumeGB[d]["FedWEIT"]
		if fw <= 0 {
			continue
		}
		s += (fw - r.VolumeGB[d]["FedKNOW"]) / fw
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
