package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
)

// Fig9Models are the architectures of the applicability study (§V-E),
// spanning the survey's six DNN categories.
var Fig9Models = []string{
	"WideResNet", "ResNeXt", "ResNet152", "SENet18",
	"MobileNetV2", "MobileNetV2x2", "ShuffleNetV2", "DenseNet", "InceptionV3",
}

// Fig9Result is the per-architecture accuracy comparison of GEM / FedWEIT /
// FedKNOW on MiniImageNet.
type Fig9Result struct {
	Models  []string
	Methods []string
	// Series[model][method] is the accuracy-vs-task curve.
	Series map[string]map[string]Series
	Raw    map[string]*fed.Result // keyed "model/method"
}

// Fig9 runs the applicability sweep. models selects a subset (nil = all).
func Fig9(opt Options, models []string) (*Fig9Result, error) {
	if models == nil {
		models = Fig9Models
	}
	methods := []string{"GEM", "FedWEIT", "FedKNOW"}
	fam := data.MiniImageNet
	ds, tasks := fam.Build(opt.Scale, opt.Seed)
	rt := RuntimeFor(fam, opt.Scale)
	alloc := data.DefaultAlloc(opt.Seed + 1)
	if opt.Scale == data.CI {
		alloc = data.CIAlloc(opt.Seed + 1)
	} else {
		rt.Clients = 20
	}
	opt.tune(&rt)
	seqs := data.Federate(tasks, rt.Clients, alloc)
	cluster := device.Jetson20()

	res := &Fig9Result{Models: models, Methods: methods,
		Series: map[string]map[string]Series{}, Raw: map[string]*fed.Result{}}
	for _, arch := range models {
		res.Series[arch] = map[string]Series{}
		var panel []Series
		for _, m := range methods {
			r := runOne(m, opt, rt, fixedCluster{cluster}, seqs, ds.NumClasses, arch, ds)
			res.Raw[arch+"/"+m] = r
			s := Series{Label: m}
			for _, tp := range r.PerTask {
				s.X = append(s.X, float64(tp.TaskIdx+1))
				s.Y = append(s.Y, tp.AvgAccuracy)
			}
			res.Series[arch][m] = s
			panel = append(panel, s)
		}
		PrintSeries(opt.out(), fmt.Sprintf("Fig.9: %s on MiniImageNet", arch), panel)
	}
	return res, nil
}

// FinalAccuracy reads the last-task average accuracy of one model/method.
func (r *Fig9Result) FinalAccuracy(arch, method string) float64 {
	s := r.Series[arch][method]
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}
