package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// SparseBenchOptions size the sparse-pipeline measurement.
type SparseBenchOptions struct {
	// N is the parameter-vector length; 0 uses the paper's 6-layer CNN at
	// CIFAR-100 shape.
	N int
	// Clients per aggregation round (default 8).
	Clients int
	// Rho is the knowledge-mask density (default 0.10, the paper's ρ).
	Rho float64
	// Iters is the timing-loop length per measurement (default 40; tests
	// use a small value).
	Iters int
	Seed  uint64
}

// CodecPoint is one codec configuration's measurements.
type CodecPoint struct {
	Name string `json:"name"`
	// BytesPerUpdate is one client upload's frame size.
	BytesPerUpdate int64 `json:"bytes_per_update"`
	// BytesPerRound is a full aggregation round: Clients uploads plus
	// Clients broadcasts of the round's aggregate.
	BytesPerRound  int64   `json:"bytes_per_round"`
	EncodeNsOp     float64 `json:"encode_ns_op"`
	DecodeNsOp     float64 `json:"decode_ns_op"`
	EncodeAllocsOp float64 `json:"encode_allocs_op"`
	DecodeAllocsOp float64 `json:"decode_allocs_op"`
}

// AggregatePoint is one aggregator configuration's measurements.
type AggregatePoint struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// SparseBenchReport is the BENCH_sparse.json payload: the sparse update
// pipeline's bytes-per-round and hot-path costs, dense vs sparse vs
// quantized.
type SparseBenchReport struct {
	N          int              `json:"n"`
	Clients    int              `json:"clients"`
	Rho        float64          `json:"rho"`
	Codecs     []CodecPoint     `json:"codecs"`
	Aggregates []AggregatePoint `json:"aggregates"`
}

// timeOp runs f iters times after one warm-up call and returns ns/op.
func timeOp(iters int, f func()) float64 {
	f()
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// SparseBench measures the sparse update pipeline end to end: frame bytes
// and encode/decode cost per codec configuration, and aggregation cost per
// aggregator. The sparse update is the top-ρ magnitude selection of the
// dense vector — exactly the mask the knowledge extractor computes.
func SparseBench(opt SparseBenchOptions) *SparseBenchReport {
	if opt.N == 0 {
		rng := tensor.NewRNG(1)
		opt.N = model.MustBuild("SixCNN", 100, 3, 32, 32, 1, rng).NumParams()
	}
	if opt.Clients == 0 {
		opt.Clients = 8
	}
	if opt.Rho == 0 {
		opt.Rho = 0.10
	}
	if opt.Iters == 0 {
		opt.Iters = 40
	}
	if opt.Seed == 0 {
		opt.Seed = 7
	}
	rng := tensor.NewRNG(opt.Seed)
	dense := make([]float32, opt.N)
	rng.FillNorm(dense, 0.05)
	// prune.SparseStore is the shared tensor.SparseVec, so the extractor's
	// selection is wire- and aggregation-ready as-is.
	sparse := prune.Extract(dense, opt.Rho)

	rep := &SparseBenchReport{N: opt.N, Clients: opt.Clients, Rho: opt.Rho}

	configs := []struct {
		name   string
		comp   fed.Compression
		sparse bool
	}{
		{"dense-f32", fed.Compression{DisableSparse: true}, false},
		{"sparse-f32", fed.Compression{}, true},
		{"dense-f16", fed.Compression{Quant: fed.QuantF16, DisableSparse: true}, false},
		{"sparse-f16", fed.Compression{Quant: fed.QuantF16}, true},
		{"dense-i8", fed.Compression{Quant: fed.QuantI8, DisableSparse: true}, false},
		{"sparse-i8", fed.Compression{Quant: fed.QuantI8}, true},
	}
	for _, cfg := range configs {
		u := &fed.Update{ClientID: 0, Participating: true, Weight: 100}
		if cfg.sparse {
			u.Sparse = sparse
		} else {
			u.Params = dense
		}
		// The broadcast is the round's aggregate: dense in → dense out,
		// ρ-sparse in → union-sparse out (auto-sparse covers the down-link).
		global := append([]float32(nil), (&fed.SparseFedAvg{}).Aggregate([]*fed.Update{u})...)
		gm := &fed.GlobalModel{Params: global}

		enc := fed.NewCodec(cfg.comp)
		var buf countingWriter
		enc.Encode(&buf, u)
		upBytes := buf.n
		buf.n = 0
		enc.Encode(&buf, gm)
		p := CodecPoint{
			Name:           cfg.name,
			BytesPerUpdate: upBytes,
			BytesPerRound:  int64(opt.Clients) * (upBytes + buf.n),
		}
		p.EncodeNsOp = timeOp(opt.Iters, func() { enc.Encode(io.Discard, u) })
		p.EncodeAllocsOp = testing.AllocsPerRun(opt.Iters, func() { enc.Encode(io.Discard, u) })

		frame := encodeToBytes(cfg.comp, u)
		dec := fed.NewCodec(fed.Compression{})
		r := newRewindReader(frame)
		p.DecodeNsOp = timeOp(opt.Iters, func() {
			r.rewind()
			dec.Decode(r)
		})
		p.DecodeAllocsOp = testing.AllocsPerRun(opt.Iters, func() {
			r.rewind()
			dec.Decode(r)
		})
		rep.Codecs = append(rep.Codecs, p)
	}

	// Aggregation: dense baseline, streaming dense, shared-mask sparse (the
	// coordinated-sparsity regime) and per-client-mask sparse (the worst
	// case, where the union grows).
	mkUpdates := func(kind string) []*fed.Update {
		var ups []*fed.Update
		for c := 0; c < opt.Clients; c++ {
			u := &fed.Update{ClientID: c, Participating: true, Weight: float64(50 + c)}
			switch kind {
			case "dense":
				u.Params = dense
			case "shared":
				u.Sparse = sparse
			case "distinct":
				w := make([]float32, opt.N)
				rng.FillNorm(w, 0.05)
				u.Sparse = prune.Extract(w, opt.Rho)
			}
			ups = append(ups, u)
		}
		return ups
	}
	aggs := []struct {
		name string
		agg  fed.Aggregator
		ups  []*fed.Update
	}{
		{"WeightedFedAvg/dense", &fed.WeightedFedAvg{}, mkUpdates("dense")},
		{"SparseFedAvg/dense", &fed.SparseFedAvg{}, mkUpdates("dense")},
		{"SparseFedAvg/sparse-shared-mask", &fed.SparseFedAvg{}, mkUpdates("shared")},
		{"SparseFedAvg/sparse-distinct-masks", &fed.SparseFedAvg{}, mkUpdates("distinct")},
	}
	for _, a := range aggs {
		a.agg.Aggregate(a.ups) // warm both scratch vectors
		a.agg.Aggregate(a.ups)
		rep.Aggregates = append(rep.Aggregates, AggregatePoint{
			Name:     a.name,
			NsOp:     timeOp(opt.Iters, func() { a.agg.Aggregate(a.ups) }),
			AllocsOp: testing.AllocsPerRun(opt.Iters, func() { a.agg.Aggregate(a.ups) }),
		})
	}
	return rep
}

// countingWriter counts bytes written.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// rewindReader re-reads one frame without per-iteration allocation.
type rewindReader struct {
	data []byte
	off  int
}

func newRewindReader(data []byte) *rewindReader { return &rewindReader{data: data} }

func (r *rewindReader) rewind() { r.off = 0 }

func (r *rewindReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func encodeToBytes(comp fed.Compression, m fed.Msg) []byte {
	var buf bytes.Buffer
	fed.NewCodec(comp).Encode(&buf, m)
	return buf.Bytes()
}

// WriteJSON writes the report as indented JSON to path.
func (r *SparseBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSparseBench loads a report written by WriteJSON.
func ReadSparseBench(path string) (*SparseBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r SparseBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Print renders the report as aligned tables with dense-baseline ratios.
func (r *SparseBenchReport) Print(w io.Writer) {
	fmt.Fprintf(w, "sparse pipeline bench: n=%d clients=%d rho=%.2f\n", r.N, r.Clients, r.Rho)
	var baseRound int64
	for _, c := range r.Codecs {
		if c.Name == "dense-f32" {
			baseRound = c.BytesPerRound
		}
	}
	ct := &Table{Title: "codec", Header: []string{"config", "bytes/update", "bytes/round", "vs dense", "encode ns/op", "decode ns/op", "allocs/op"}}
	for _, c := range r.Codecs {
		ratio := "—"
		if baseRound > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(baseRound)/float64(c.BytesPerRound))
		}
		ct.Rows = append(ct.Rows, []string{
			c.Name, fmt.Sprint(c.BytesPerUpdate), fmt.Sprint(c.BytesPerRound), ratio,
			fmt.Sprintf("%.0f", c.EncodeNsOp), fmt.Sprintf("%.0f", c.DecodeNsOp),
			fmt.Sprintf("%.0f/%.0f", c.EncodeAllocsOp, c.DecodeAllocsOp),
		})
	}
	ct.Print(w)
	var baseNs float64
	for _, a := range r.Aggregates {
		if a.Name == "WeightedFedAvg/dense" {
			baseNs = a.NsOp
		}
	}
	at := &Table{Title: "aggregation", Header: []string{"config", "ns/op", "speedup", "allocs/op"}}
	for _, a := range r.Aggregates {
		speedup := "—"
		if baseNs > 0 {
			speedup = fmt.Sprintf("%.2fx", baseNs/a.NsOp)
		}
		at.Rows = append(at.Rows, []string{a.Name, fmt.Sprintf("%.0f", a.NsOp), speedup, fmt.Sprintf("%.0f", a.AllocsOp)})
	}
	at.Print(w)
}

// Compare prints a benchstat-style before/after table against a baseline
// report and returns an error when a deterministic metric regressed: frame
// bytes are hardware-independent, so any growth is a codec change that must
// be made deliberately (and the baseline regenerated). Timing ratios are
// printed for trend-watching but never fail — CI hardware varies.
func (r *SparseBenchReport) Compare(base *SparseBenchReport, w io.Writer) error {
	fmt.Fprintf(w, "\n== vs baseline ==\n")
	var regressed []string
	baseCodecs := map[string]CodecPoint{}
	for _, c := range base.Codecs {
		baseCodecs[c.Name] = c
	}
	for _, c := range r.Codecs {
		b, ok := baseCodecs[c.Name]
		if !ok {
			fmt.Fprintf(w, "%-12s new config (no baseline)\n", c.Name)
			continue
		}
		fmt.Fprintf(w, "%-12s bytes/round %d → %d   encode %.2fx   decode %.2fx\n",
			c.Name, b.BytesPerRound, c.BytesPerRound,
			b.EncodeNsOp/c.EncodeNsOp, b.DecodeNsOp/c.DecodeNsOp)
		if r.N == base.N && r.Clients == base.Clients && r.Rho == base.Rho &&
			c.BytesPerRound > b.BytesPerRound {
			regressed = append(regressed, c.Name)
		}
	}
	baseAggs := map[string]AggregatePoint{}
	for _, a := range base.Aggregates {
		baseAggs[a.Name] = a
	}
	for _, a := range r.Aggregates {
		if b, ok := baseAggs[a.Name]; ok {
			fmt.Fprintf(w, "%-34s %.2fx\n", a.Name, b.NsOp/a.NsOp)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("bytes-per-round regressed for %v: codec change must be deliberate (regenerate the baseline)", regressed)
	}
	return nil
}
