package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
)

// Fig8Result is the client-scalability study (Fig. 8): accuracy and
// forgetting on MiniImageNet at two cluster scales (50 and 100 clients in
// the paper), for GEM / FedWEIT / FedKNOW. More clients means thinner
// non-IID shards per client, so negative transfer intensifies.
type Fig8Result struct {
	ClientCounts []int
	Methods      []string
	// Accuracy[ci][mi] is the per-task accuracy series for client count ci
	// and method mi; Forgetting likewise.
	Accuracy   [][]Series
	Forgetting [][]Series
	Raw        map[string]*fed.Result // keyed "method@clients"
}

// Fig8 runs the sweep.
func Fig8(opt Options) (*Fig8Result, error) {
	counts := []int{50, 100}
	if opt.Scale == data.CI {
		counts = []int{4, 8}
	}
	methods := []string{"GEM", "FedWEIT", "FedKNOW"}
	fam := data.MiniImageNet
	ds, tasks := fam.Build(opt.Scale, opt.Seed)
	rt := RuntimeFor(fam, opt.Scale)
	arch := archFor(fam)

	res := &Fig8Result{ClientCounts: counts, Methods: methods, Raw: map[string]*fed.Result{}}
	for _, nClients := range counts {
		rt := rt
		rt.Clients = nClients
		alloc := data.DefaultAlloc(opt.Seed + 1)
		if opt.Scale == data.CI {
			alloc = data.CIAlloc(opt.Seed + 1)
		}
		// Thinner shards at higher client counts: halve the per-client
		// sample fraction for the larger cluster, mirroring the paper's
		// observation that 100-client MiniImageNet leaves few samples each.
		if nClients == counts[len(counts)-1] {
			alloc.MinFrac /= 2
			alloc.MaxFrac /= 2
		}
		opt.tune(&rt)
		seqs := data.Federate(tasks, nClients, alloc)
		cluster := device.Uniform(nClients, device.JetsonXavierNX)

		var accRow, fgtRow []Series
		for _, m := range methods {
			r := runOne(m, opt, rt, fixedCluster{cluster}, seqs, ds.NumClasses, arch, ds)
			res.Raw[fmt.Sprintf("%s@%d", m, nClients)] = r
			acc := Series{Label: fmt.Sprintf("%s (%d clients)", m, nClients)}
			fgt := Series{Label: acc.Label}
			for _, tp := range r.PerTask {
				acc.X = append(acc.X, float64(tp.TaskIdx+1))
				acc.Y = append(acc.Y, tp.AvgAccuracy)
				fgt.X = append(fgt.X, float64(tp.TaskIdx+1))
				fgt.Y = append(fgt.Y, tp.ForgettingRate)
			}
			accRow = append(accRow, acc)
			fgtRow = append(fgtRow, fgt)
		}
		res.Accuracy = append(res.Accuracy, accRow)
		res.Forgetting = append(res.Forgetting, fgtRow)
	}
	for i, nClients := range counts {
		PrintSeries(opt.out(), fmt.Sprintf("Fig.8(a): accuracy, %d clients", nClients), res.Accuracy[i])
		PrintSeries(opt.out(), fmt.Sprintf("Fig.8(b): forgetting rate, %d clients", nClients), res.Forgetting[i])
	}
	return res, nil
}
