package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
)

// Fig6Result is the communication-time-vs-bandwidth sweep (Fig. 6) for the
// 6-layer CNN and ResNet-18, FedKNOW vs FedWEIT.
type Fig6Result struct {
	// Hours[model][method] is a series over device.Fig6Bandwidths.
	Hours map[string]map[string][]float64
	Table *Table
}

// Fig6 runs each (model, method) combination once at the reference 1 MB/s
// bandwidth; communication time is exactly inversely proportional to
// bandwidth, so the sweep follows analytically (as it does on the real
// testbed, where links are rate-limited).
func Fig6(opt Options) (*Fig6Result, error) {
	combos := []struct {
		label  string
		family data.Family
	}{
		{"6CNN", data.CIFAR100},
		{"ResNet18", data.MiniImageNet},
	}
	methods := []string{"FedKNOW", "FedWEIT"}
	res := &Fig6Result{Hours: map[string]map[string][]float64{}}
	const refBW = 1024 * 1024
	for _, combo := range combos {
		ds, tasks := combo.family.Build(opt.Scale, opt.Seed)
		rt := RuntimeFor(combo.family, opt.Scale)
		rt.Bandwidth = refBW
		arch := archFor(combo.family)
		alloc := data.DefaultAlloc(opt.Seed + 1)
		if opt.Scale == data.CI {
			alloc = data.CIAlloc(opt.Seed + 1)
		} else {
			rt.Clients = 20
		}
		cluster := device.Jetson20()
		opt.tune(&rt)
		seqs := data.Federate(tasks, rt.Clients, alloc)

		res.Hours[combo.label] = map[string][]float64{}
		for _, m := range methods {
			r := runOne(m, opt, rt, fixedCluster{cluster}, seqs, ds.NumClasses, arch, ds)
			ref := r.PerTask[len(r.PerTask)-1].CommHours
			hours := make([]float64, len(device.Fig6Bandwidths))
			for i, bw := range device.Fig6Bandwidths {
				hours[i] = ref * refBW / bw
			}
			res.Hours[combo.label][m] = hours
		}
	}
	tbl := &Table{
		Title:  "Fig.6: total communication time (h) vs bandwidth",
		Header: []string{"Model", "Method"},
	}
	for _, bw := range device.Fig6Bandwidths {
		tbl.Header = append(tbl.Header, device.BandwidthLabel(bw))
	}
	for _, combo := range combos {
		for _, m := range methods {
			row := []string{combo.label, m}
			for _, h := range res.Hours[combo.label][m] {
				row = append(row, fmt.Sprintf("%.3f", h))
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	res.Table = tbl
	tbl.Print(opt.out())
	return res, nil
}
