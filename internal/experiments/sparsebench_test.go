package experiments

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSparseBenchReport(t *testing.T) {
	rep := SparseBench(SparseBenchOptions{N: 20000, Clients: 4, Iters: 2})
	if len(rep.Codecs) != 6 || len(rep.Aggregates) != 4 {
		t.Fatalf("report shape: %d codecs, %d aggregates", len(rep.Codecs), len(rep.Aggregates))
	}
	byName := map[string]CodecPoint{}
	for _, c := range rep.Codecs {
		if c.BytesPerUpdate <= 0 || c.BytesPerRound <= 0 || c.EncodeNsOp <= 0 || c.DecodeNsOp <= 0 {
			t.Fatalf("%s: empty measurement %+v", c.Name, c)
		}
		byName[c.Name] = c
	}
	// The acceptance bar: at ρ = 10% masks, a sparse round costs at most a
	// quarter of the dense PR-2-style round.
	dense, sparse := byName["dense-f32"], byName["sparse-f32"]
	if sparse.BytesPerRound*4 > dense.BytesPerRound {
		t.Fatalf("sparse round %d B not ≤ 1/4 of dense %d B", sparse.BytesPerRound, dense.BytesPerRound)
	}
	// Steady-state codec paths allocate nothing.
	for _, c := range rep.Codecs {
		if c.EncodeAllocsOp != 0 || c.DecodeAllocsOp != 0 {
			t.Fatalf("%s: allocs enc=%v dec=%v", c.Name, c.EncodeAllocsOp, c.DecodeAllocsOp)
		}
	}
	for _, a := range rep.Aggregates {
		if a.AllocsOp != 0 {
			t.Fatalf("%s: %v allocs/op", a.Name, a.AllocsOp)
		}
	}

	// JSON round trip and self-comparison.
	path := filepath.Join(t.TempDir(), "BENCH_sparse.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSparseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != rep.N || len(back.Codecs) != len(rep.Codecs) {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
	var out bytes.Buffer
	rep.Print(&out)
	if out.Len() == 0 {
		t.Fatal("empty printed report")
	}
	if err := rep.Compare(back, &out); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}
	// A byte regression must be fatal.
	worse := *rep
	worse.Codecs = append([]CodecPoint(nil), rep.Codecs...)
	worse.Codecs[1].BytesPerRound *= 2
	if err := worse.Compare(back, &out); err == nil {
		t.Fatal("byte regression not flagged")
	}
}
