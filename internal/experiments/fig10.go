package experiments

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
)

// Fig10Setting is one knowledge-retention configuration of the parameter
// study (§V-E, Fig. 10).
type Fig10Setting struct {
	Label   string
	Factory fed.Factory
}

// Fig10Result reports final average accuracy and total training time for
// each retention setting.
type Fig10Result struct {
	Settings []string
	Accuracy map[string]float64
	Hours    map[string]float64
	Table    *Table
}

// fig10Settings builds the paper's configurations: GEM retaining 10–100 %
// of samples, FedWEIT with all clients' vs only its own adaptive weights,
// FedKNOW with ρ ∈ {5 %, 10 %, 20 %}.
func fig10Settings(scale data.Scale) []Fig10Setting {
	gem := func(frac float64) fed.Factory {
		return func(ctx *fed.ClientCtx) fed.Strategy { return baselines.NewGEMFrac(ctx, frac) }
	}
	fk := func(rho float64) fed.Factory {
		opts := fedKNOWOptions(scale)
		opts.Rho = rho
		return core.Factory(opts)
	}
	return []Fig10Setting{
		{"GEM-10%", gem(0.10)},
		{"GEM-20%", gem(0.20)},
		{"GEM-50%", gem(0.50)},
		{"GEM-100%", gem(1.00)},
		{"FedWEIT-all", baselines.NewFedWEIT},
		{"FedWEIT-own", baselines.NewFedWEITLocal},
		{"FedKNOW-5%", fk(0.05)},
		{"FedKNOW-10%", fk(0.10)},
		{"FedKNOW-20%", fk(0.20)},
	}
}

// Fig10 runs the parameter study on MiniImageNet + ResNet-18.
func Fig10(opt Options) (*Fig10Result, error) {
	fam := data.MiniImageNet
	ds, tasks := fam.Build(opt.Scale, opt.Seed)
	rt := RuntimeFor(fam, opt.Scale)
	arch := archFor(fam)
	alloc := data.DefaultAlloc(opt.Seed + 1)
	if opt.Scale == data.CI {
		alloc = data.CIAlloc(opt.Seed + 1)
	} else {
		rt.Clients = 20
	}
	opt.tune(&rt)
	seqs := data.Federate(tasks, rt.Clients, alloc)
	cluster := device.Jetson20()

	res := &Fig10Result{Accuracy: map[string]float64{}, Hours: map[string]float64{}}
	for _, setting := range fig10Settings(opt.Scale) {
		cfg := fed.Config{
			Method: setting.Label, Rounds: rt.Rounds, LocalIters: rt.LocalIters,
			BatchSize: rt.BatchSize, LR: rt.LR, LRDecay: rt.LRDecay,
			NumClasses: ds.NumClasses, Bandwidth: rt.Bandwidth, Seed: opt.Seed,
		}
		opt.applyScheduler(&cfg)
		e := fed.NewEngine(cfg, cluster, seqs,
			builderFor(arch, ds.NumClasses, ds.C, ds.H, ds.W, rt.Width), setting.Factory)
		if opt.Observer != nil {
			e.SetObserver(opt.Observer)
		}
		r := e.Run()
		last := r.PerTask[len(r.PerTask)-1]
		res.Settings = append(res.Settings, setting.Label)
		res.Accuracy[setting.Label] = last.AvgAccuracy
		res.Hours[setting.Label] = last.SimHours
	}
	tbl := &Table{
		Title:  "Fig.10: retention-parameter study on MiniImageNet/ResNet-18",
		Header: []string{"Setting", "final avg accuracy", "training time (h)"},
	}
	for _, s := range res.Settings {
		tbl.Rows = append(tbl.Rows, []string{s, f2(res.Accuracy[s] * 100), f6(res.Hours[s])})
	}
	res.Table = tbl
	tbl.Print(opt.out())
	return res, nil
}
