package experiments

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
)

// AblationResult reports final average accuracy and forgetting for FedKNOW
// variants with individual design components removed. This quantifies the
// DESIGN.md call-outs: the gradient integrator (catastrophic-forgetting
// defence) and the post-aggregation guard (negative-transfer defence).
type AblationResult struct {
	Variants   []string
	Accuracy   map[string]float64
	Forgetting map[string]float64
	Table      *Table
}

// Ablation runs FedKNOW complete and with each component disabled on a
// CIFAR100-style workload.
func Ablation(opt Options) (*AblationResult, error) {
	fam := data.CIFAR100
	ds, tasks := fam.Build(opt.Scale, opt.Seed)
	rt := RuntimeFor(fam, opt.Scale)
	arch := archFor(fam)
	alloc := data.DefaultAlloc(opt.Seed + 1)
	if opt.Scale == data.CI {
		alloc = data.CIAlloc(opt.Seed + 1)
	} else {
		rt.Clients = 20
	}
	opt.tune(&rt)
	seqs := data.Federate(tasks, rt.Clients, alloc)
	cluster := device.Jetson20()

	base := fedKNOWOptions(opt.Scale)
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"FedKNOW-full", base},
		{"no-integrator", func() core.Options { o := base; o.DisableIntegration = true; return o }()},
		{"no-global-guard", func() core.Options { o := base; o.DisableGlobalGuard = true; return o }()},
		{"no-finetune", func() core.Options { o := base; o.FinetuneIters = 0; return o }()},
	}
	res := &AblationResult{Accuracy: map[string]float64{}, Forgetting: map[string]float64{}}
	for _, v := range variants {
		cfg := fed.Config{
			Method: v.label, Rounds: rt.Rounds, LocalIters: rt.LocalIters,
			BatchSize: rt.BatchSize, LR: rt.LR, LRDecay: rt.LRDecay,
			NumClasses: ds.NumClasses, Bandwidth: rt.Bandwidth, Seed: opt.Seed,
		}
		opt.applyScheduler(&cfg)
		e := fed.NewEngine(cfg, cluster, seqs,
			builderFor(arch, ds.NumClasses, ds.C, ds.H, ds.W, rt.Width),
			core.Factory(v.opts))
		if opt.Observer != nil {
			e.SetObserver(opt.Observer)
		}
		r := e.Run()
		last := r.PerTask[len(r.PerTask)-1]
		res.Variants = append(res.Variants, v.label)
		res.Accuracy[v.label] = last.AvgAccuracy
		res.Forgetting[v.label] = last.ForgettingRate
	}
	tbl := &Table{
		Title:  "Ablation: FedKNOW component contributions (CIFAR100)",
		Header: []string{"Variant", "final avg accuracy", "final forgetting"},
	}
	for _, v := range res.Variants {
		tbl.Rows = append(tbl.Rows, []string{v, f2(res.Accuracy[v] * 100), f2(res.Forgetting[v])})
	}
	res.Table = tbl
	tbl.Print(opt.out())
	return res, nil
}
