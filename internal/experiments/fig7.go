package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
)

// Fig7Result is the task-scalability study (Fig. 7): accuracy and forgetting
// rate as the merged MiniImageNet + CIFAR100 + TinyImageNet workload grows
// to 80 tasks, on ResNet-18 with 20 clients, for GEM / FedWEIT / FedKNOW.
type Fig7Result struct {
	NumTasks   int
	Methods    []string
	Accuracy   []Series
	Forgetting []Series
	Raw        map[string]*fed.Result
}

// Fig7 builds the merged dataset (80 tasks × 5 classes at Full scale; 16
// tasks × 10 classes at CI, preserving the "many small tasks" shape) and
// runs the three methods.
func Fig7(opt Options) (*Fig7Result, error) {
	mini, _ := data.MiniImageNet.Build(opt.Scale, opt.Seed)
	cifar, _ := data.CIFAR100.Build(opt.Scale, opt.Seed+1)
	tiny, _ := data.TinyImageNet.Build(opt.Scale, opt.Seed+2)
	merged := data.MergeDatasets("Merged80", mini, cifar, tiny)
	numTasks := 80
	clients := 20
	if opt.Scale == data.CI {
		numTasks = 10
		clients = 4
	}
	tasks := data.SplitTasks(merged, numTasks)

	rt := RuntimeFor(data.MiniImageNet, opt.Scale)
	rt.Clients = clients
	alloc := data.DefaultAlloc(opt.Seed + 3)
	if opt.Scale == data.CI {
		alloc = data.CIAlloc(opt.Seed + 3)
	}
	opt.tune(&rt)
	seqs := data.Federate(tasks, clients, alloc)
	cluster := device.Jetson20()

	methods := []string{"GEM", "FedWEIT", "FedKNOW"}
	res := &Fig7Result{NumTasks: numTasks, Methods: methods, Raw: map[string]*fed.Result{}}
	for _, m := range methods {
		r := runOne(m, opt, rt, fixedCluster{cluster}, seqs, merged.NumClasses, "ResNet18", merged)
		res.Raw[m] = r
		acc := Series{Label: m}
		fgt := Series{Label: m}
		for _, tp := range r.PerTask {
			acc.X = append(acc.X, float64(tp.TaskIdx+1))
			acc.Y = append(acc.Y, tp.AvgAccuracy)
			fgt.X = append(fgt.X, float64(tp.TaskIdx+1))
			fgt.Y = append(fgt.Y, tp.ForgettingRate)
		}
		res.Accuracy = append(res.Accuracy, acc)
		res.Forgetting = append(res.Forgetting, fgt)
	}
	PrintSeries(opt.out(), fmt.Sprintf("Fig.7(a): avg accuracy vs number of tasks (%d tasks)", numTasks), res.Accuracy)
	PrintSeries(opt.out(), "Fig.7(b): forgetting rate vs number of tasks", res.Forgetting)
	return res, nil
}
