// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each experiment has a structured result (for tests and
// benches) and a printer that emits the same rows/series the paper reports.
// The Scale knob selects between the paper's task/client counts (Full) and
// a laptop-sized configuration (CI) that preserves comparative orderings.
package experiments

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Runtime bundles the training-protocol constants for one run.
type Runtime struct {
	Clients    int
	Rounds     int
	LocalIters int
	BatchSize  int
	LR         float64
	LRDecay    float64
	Bandwidth  float64 // bytes/second (paper default: 1 MB/s)
	Width      int
	MemScale   float64
}

// paperRounds holds §V-B's per-workload aggregation-round counts.
var paperRounds = map[string]int{
	"CIFAR100": 15, "FC100": 15, "CORe50": 15, "MiniImageNet": 10, "TinyImageNet": 5,
}

// paperLR holds §V-B's per-workload learning rates and decay rates.
var paperLR = map[string][2]float64{
	"CIFAR100": {0.001, 1e-4}, "FC100": {0.001, 1e-4}, "CORe50": {0.001, 1e-4},
	"MiniImageNet": {0.0008, 1e-5}, "TinyImageNet": {0.0008, 1e-5},
}

// RuntimeFor derives the protocol constants for a dataset family at a scale.
func RuntimeFor(f data.Family, scale data.Scale) Runtime {
	if scale == data.Full {
		lr := paperLR[f.Name]
		if lr[0] == 0 {
			lr = [2]float64{0.001, 1e-4}
		}
		r := paperRounds[f.Name]
		if r == 0 {
			r = 10
		}
		return Runtime{
			Clients: 20, Rounds: r, LocalIters: 25, BatchSize: 16,
			LR: lr[0], LRDecay: lr[1], Bandwidth: 1024 * 1024, Width: 1,
		}
	}
	// CI scale: few clients, short rounds, higher LR so learning is visible
	// within the shrunken budget.
	return Runtime{
		Clients: 4, Rounds: 2, LocalIters: 2, BatchSize: 8,
		LR: 0.02, LRDecay: 1e-4, Bandwidth: 1024 * 1024, Width: 1,
	}
}

// archFor returns the §V-A model for a dataset family: the 6-layer CNN for
// CIFAR100/FC100/CORe50, ResNet-18 for Mini/TinyImageNet.
func archFor(f data.Family) string {
	switch f.Name {
	case "MiniImageNet", "TinyImageNet":
		return "ResNet18"
	default:
		return "SixCNN"
	}
}

// fedKNOWOptions scales FedKNOW's hyperparameters (§V-B: ρ = 10 %, k = 10).
func fedKNOWOptions(scale data.Scale) core.Options {
	opts := core.DefaultOptions()
	if scale == data.CI {
		opts.K = 3
		opts.FinetuneIters = 1
		opts.SelectEvery = 3
	}
	return opts
}

// MethodFactory resolves a method name (FedKNOW or any §V-A baseline) to a
// strategy factory. Unknown names panic: experiment specs are static.
func MethodFactory(name string, scale data.Scale) fed.Factory {
	if name == "FedKNOW" {
		return core.Factory(fedKNOWOptions(scale))
	}
	if f, ok := baselines.Registry[name]; ok {
		return f
	}
	panic("experiments: unknown method " + name)
}

// AllMethods is the paper's presentation order: FedKNOW then the 11
// baselines.
var AllMethods = append([]string{"FedKNOW"}, baselines.Names...)

// builderFor returns the model builder for an architecture and geometry.
func builderFor(arch string, numClasses, inC, inH, inW, width int) func(*tensor.RNG) *model.Model {
	return func(rng *tensor.RNG) *model.Model {
		return model.MustBuild(arch, numClasses, inC, inH, inW, width, rng)
	}
}

// runOne executes one method on one prepared federation and returns the
// engine result.
func runOne(method string, opt Options, rt Runtime, cluster clusterLike,
	seqs [][]data.ClientTask, numClasses int, arch string, ds *data.Dataset) *fed.Result {
	if opt.KernelThreads > 0 {
		tensor.SetKernelThreads(opt.KernelThreads)
	}
	cfg := fed.Config{
		Method: method, Rounds: rt.Rounds, LocalIters: rt.LocalIters,
		BatchSize: rt.BatchSize, LR: rt.LR, LRDecay: rt.LRDecay,
		NumClasses: numClasses, Bandwidth: rt.Bandwidth, MemScale: rt.MemScale,
		Seed: opt.Seed, Parallelism: opt.Parallelism,
	}
	opt.applyScheduler(&cfg)
	e := fed.NewEngine(cfg, cluster.cluster(), seqs,
		builderFor(arch, numClasses, ds.C, ds.H, ds.W, rt.Width),
		MethodFactory(method, opt.Scale))
	if opt.Observer != nil {
		e.SetObserver(opt.Observer)
	}
	return e.Run()
}
