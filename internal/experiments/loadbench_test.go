package experiments

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunLoadBench drives a miniature scripted cohort end to end — real TCP
// wire peers, both aggregator modes — and checks the report's books: every
// upload folded, the expected commit count, positive rates, and a JSON
// round trip.
func TestRunLoadBench(t *testing.T) {
	opt := LoadBenchOptions{Clients: 3, Rounds: 4, N: 4096, Density: 0.05,
		CommitEvery: 3, Shards: 2, Seed: 5, Logf: t.Logf}
	rep, err := RunLoadBench(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic {
		t.Fatal("pin passed yet report says non-deterministic")
	}
	if len(rep.Modes) != 2 || rep.Modes[0].Shards != 1 || rep.Modes[1].Shards != 2 {
		t.Fatalf("modes = %+v, want single-loop then 2-sharded", rep.Modes)
	}
	for _, m := range rep.Modes {
		if m.Updates != opt.Clients*opt.Rounds {
			t.Fatalf("%s folded %d updates, want %d", m.Aggregator, m.Updates, opt.Clients*opt.Rounds)
		}
		if m.Commits != opt.Clients*opt.Rounds/opt.CommitEvery {
			t.Fatalf("%s made %d commits, want %d", m.Aggregator, m.Commits, opt.Clients*opt.Rounds/opt.CommitEvery)
		}
		if m.UpdatesPerSec <= 0 || m.CommitsPerSec <= 0 || m.WallSeconds <= 0 {
			t.Fatalf("%s has non-positive rates: %+v", m.Aggregator, m)
		}
		if m.FoldP99Micros < m.FoldP50Micros {
			t.Fatalf("%s p99 %v below p50 %v", m.Aggregator, m.FoldP99Micros, m.FoldP50Micros)
		}
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup = %v", rep.Speedup)
	}

	path := filepath.Join(t.TempDir(), "BENCH_throughput.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Speedup != rep.Speedup || len(back.Modes) != 2 || back.Modes[1].Updates != rep.Modes[1].Updates {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rep)
	}

	// The gate: a matching baseline with a reachable floor passes; an
	// unreachable floor fails; a shape mismatch fails regardless of speed.
	base := *back
	base.MinSpeedup = rep.Speedup / 2
	if err := rep.Compare(&base, 0, io.Discard); err != nil {
		t.Fatalf("reachable floor must pass: %v", err)
	}
	base.MinSpeedup = rep.Speedup * 100
	if err := rep.Compare(&base, 0, io.Discard); err == nil {
		t.Fatal("unreachable floor must fail")
	}
	if err := rep.Compare(&base, rep.Speedup/2, io.Discard); err != nil {
		t.Fatalf("-min-speedup override must beat the baseline floor: %v", err)
	}
	base.MinSpeedup = 0
	base.Clients++
	if err := rep.Compare(&base, 0, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("shape mismatch must fail: %v", err)
	}
}

// TestLoadDeterminismPin exercises the bitwise cross-check the harness runs
// before publishing any number.
func TestLoadDeterminismPin(t *testing.T) {
	if err := LoadDeterminismPin(2048, 9); err != nil {
		t.Fatal(err)
	}
}
