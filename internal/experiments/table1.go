package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fed"
)

// Table1Result is the paper's Table I: the percentage improvement of
// FedKNOW's per-task average accuracy over the mean of the 11 baselines,
// per dataset and task.
type Table1Result struct {
	Datasets    []string
	Improvement map[string][]float64 // dataset → per-task % improvement
	Table       *Table
}

// Table1 runs FedKNOW and all baselines on the requested datasets (nil
// means all five) and tabulates the improvement.
func Table1(opt Options, datasets []data.Family) (*Table1Result, error) {
	if datasets == nil {
		datasets = data.Families
	}
	res := &Table1Result{Improvement: map[string][]float64{}}
	maxTasks := 0
	for _, fam := range datasets {
		ds, tasks := fam.Build(opt.Scale, opt.Seed)
		rt := RuntimeFor(fam, opt.Scale)
		arch := archFor(fam)
		alloc := data.DefaultAlloc(opt.Seed + 1)
		cluster := device.Jetson20()
		if opt.Scale == data.CI {
			alloc = data.CIAlloc(opt.Seed + 1)
		} else {
			rt.Clients = 20
		}
		opt.tune(&rt)
		seqs := data.Federate(tasks, rt.Clients, alloc)

		results := map[string]*fed.Result{}
		for _, m := range AllMethods {
			results[m] = runOne(m, opt, rt, fixedCluster{cluster}, seqs, ds.NumClasses, arch, ds)
		}
		nTasks := len(tasks)
		if nTasks > maxTasks {
			maxTasks = nTasks
		}
		imp := make([]float64, nTasks)
		for t := 0; t < nTasks; t++ {
			fk := results["FedKNOW"].PerTask[t].AvgAccuracy
			var sum float64
			n := 0
			for m, r := range results {
				if m == "FedKNOW" {
					continue
				}
				sum += r.PerTask[t].AvgAccuracy
				n++
			}
			mean := sum / float64(n)
			if mean > 0 {
				imp[t] = (fk - mean) / mean * 100
			}
		}
		res.Datasets = append(res.Datasets, fam.Name)
		res.Improvement[fam.Name] = imp
	}

	tbl := &Table{
		Title:  "Table I: average percentage accuracy improvement of FedKNOW over the mean of 11 baselines",
		Header: append([]string{"Task"}, res.Datasets...),
	}
	for t := 0; t < maxTasks; t++ {
		row := []string{fmt.Sprintf("Task%d", t+1)}
		for _, d := range res.Datasets {
			imp := res.Improvement[d]
			if t < len(imp) {
				row = append(row, fmt.Sprintf("%.2f%%", imp[t]))
			} else {
				row = append(row, "-")
			}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	res.Table = tbl
	tbl.Print(opt.out())
	return res, nil
}

// MeanImprovement averages the per-task improvements of one dataset.
func (r *Table1Result) MeanImprovement(dataset string) float64 {
	imp := r.Improvement[dataset]
	if len(imp) == 0 {
		return 0
	}
	var s float64
	for _, v := range imp {
		s += v
	}
	return s / float64(len(imp))
}
