package doclint

import "testing"

// TestFedAndTensorFullyDocumented is the enforcement half of the godoc
// pass: every exported identifier in internal/fed and internal/tensor must
// carry a doc comment stating what it is (and, for the protocol seams, its
// invariants). A new export without documentation fails tier-1.
func TestFedAndTensorFullyDocumented(t *testing.T) {
	for _, dir := range []string{"../fed", "../tensor"} {
		findings, err := Lint(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s/%s", dir, f)
		}
	}
}
