// Package doclint enforces the godoc contract on selected packages: every
// exported type, function, method, constant and variable must carry a doc
// comment. It is the repository's self-contained equivalent of revive's
// "exported" rule (the container ships no third-party linters), wired into
// CI next to go vet and into the test suite, so the godoc pass over
// internal/fed and internal/tensor cannot silently regress.
package doclint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Lint parses every non-test Go file in dir and returns one finding per
// exported declaration that lacks a doc comment, formatted as
// "file:line: <what>". A const/var/type group documented at the group level
// counts as documented (the godoc convention).
func Lint(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s",
			filepath.Base(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// lintGenDecl checks a const/var/type declaration: each exported spec needs
// its own doc comment unless the enclosing group carries one.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && !(groupDoc && len(d.Specs) == 1) {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "exported %s %s has no doc comment", declKind(d.Tok), name.Name)
				}
			}
		}
	}
}

// funcKind labels a FuncDecl for the finding message.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// exportedRecv reports whether d is a plain function or a method whose
// receiver type is itself exported — methods on unexported types are not
// part of the package's godoc surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// declKind labels a GenDecl token for the finding message.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
