package shard

import (
	"testing"

	"repro/internal/tensor"
)

// TestPlanPartition: the partition must cover [0, n) exactly, contiguously,
// balanced to within one coordinate, for awkward n/P combinations including
// P > n.
func TestPlanPartition(t *testing.T) {
	for _, c := range []struct{ n, p int }{
		{10, 1}, {10, 3}, {10, 10}, {3, 8}, {0, 4}, {1 << 16, 7},
	} {
		pl := NewPlan(c.n, c.p)
		next := 0
		for s := 0; s < pl.Shards(); s++ {
			lo, hi := pl.Bounds(s)
			if lo != next {
				t.Fatalf("n=%d p=%d shard %d starts at %d, want %d", c.n, c.p, s, lo, next)
			}
			if hi < lo {
				t.Fatalf("n=%d p=%d shard %d inverted [%d,%d)", c.n, c.p, s, lo, hi)
			}
			if w := hi - lo; w > c.n/pl.Shards()+1 {
				t.Fatalf("n=%d p=%d shard %d width %d is unbalanced", c.n, c.p, s, w)
			}
			next = hi
		}
		if next != c.n {
			t.Fatalf("n=%d p=%d partition covers [0,%d)", c.n, c.p, next)
		}
	}
	if NewPlan(8, 0).Shards() != 1 {
		t.Fatal("shards < 1 must clamp to 1")
	}
}

// mkSparse builds a deterministic sparse vector of ~density·n coordinates.
func mkSparse(rng *tensor.RNG, n int, density float64) *tensor.SparseVec {
	w := make([]float32, n)
	mask := make([]bool, n)
	for i := range w {
		w[i] = float32(rng.Norm())
		mask[i] = rng.Float64() < density
	}
	return tensor.GatherMask(nil, w, mask)
}

// naiveFold is the reference: a plain dense accumulate of the same weighted
// contributions, per coordinate the same operations the reducer performs.
type naiveFold struct {
	acc []float32
}

func (f *naiveFold) dense(w float32, x []float32) {
	if f.acc == nil {
		f.acc = make([]float32, len(x))
	}
	for i, v := range x {
		f.acc[i] += w * v
	}
}

func (f *naiveFold) sparse(w float32, x *tensor.SparseVec) {
	if f.acc == nil {
		f.acc = make([]float32, x.N)
	}
	for i, j := range x.Indices {
		f.acc[j] += w * x.Values[i]
	}
}

func (f *naiveFold) merge(scale float32) []float32 {
	out := make([]float32, len(f.acc))
	for i, v := range f.acc {
		out[i] = scale * v
	}
	return out
}

// TestReducerMatchesNaive: for shard counts {1,2,8} and mixed dense/sparse
// rounds, the merged result must equal the naive single-loop fold bit for
// bit, across consecutive rounds (exercising the lazy re-zeroing and the
// double-buffered merge).
func TestReducerMatchesNaive(t *testing.T) {
	const n = 10_000
	for _, p := range []int{1, 2, 8} {
		rng := tensor.NewRNG(99)
		r := NewReducer(p)
		for round := 0; round < 4; round++ {
			naive := &naiveFold{}
			r.BeginRound()
			dense := make([]float32, n)
			for i := range dense {
				dense[i] = float32(rng.Norm())
			}
			contribs := []struct {
				w  float32
				sp *tensor.SparseVec
			}{
				{1.5, mkSparse(rng, n, 0.05)},
				{0.25, mkSparse(rng, n, 0.3)},
			}
			for _, c := range contribs {
				r.FoldSparse(c.w, c.sp)
				naive.sparse(c.w, c.sp)
			}
			if round%2 == 1 { // alternate rounds go full via a dense update
				r.FoldDense(2, dense)
				naive.dense(2, dense)
			}
			scale := float32(1 / (1.75 + float64(round%2)*2))
			got := r.Merge(scale)
			want := naive.merge(scale)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%d round %d coordinate %d: %v, want %v", p, round, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReducerDeterministicAcrossThreads: the same fold sequence must produce
// identical bits for every kernel-thread budget — the property that lets the
// concurrent fold stage replace the serial loop without perturbing any
// reproducibility invariant.
func TestReducerDeterministicAcrossThreads(t *testing.T) {
	const n = 40_000
	run := func(threads int) []float32 {
		old := tensor.KernelThreads()
		tensor.SetKernelThreads(threads)
		defer tensor.SetKernelThreads(old)
		rng := tensor.NewRNG(5)
		r := NewReducer(8)
		r.BeginRound()
		r.FoldSparse(0.7, mkSparse(rng, n, 0.2))
		r.FoldDense(1.3, mkSparse(rng, n, 1).Densify())
		r.FoldSparse(0.1, mkSparse(rng, n, 0.01))
		return append([]float32(nil), r.Merge(1/3.1)...)
	}
	want := run(1)
	for _, threads := range []int{4, 16} {
		got := run(threads)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads=%d coordinate %d: %v, want %v", threads, i, got[i], want[i])
			}
		}
	}
}

// TestReducerMergeSurvivesNextRound pins the double-buffer contract: the
// vector returned by Merge stays intact while the next round folds and
// merges, and is only rewritten by the round after that.
func TestReducerMergeSurvivesNextRound(t *testing.T) {
	r := NewReducer(4)
	r.BeginRound()
	r.FoldDense(1, []float32{5, 6, 7, 8, 9})
	first := r.Merge(1)
	r.BeginRound()
	r.FoldSparse(1, &tensor.SparseVec{N: 5, Indices: []int32{1, 4}, Values: []float32{10, 20}})
	second := r.Merge(1)
	if first[0] != 5 || first[1] != 6 || first[4] != 9 {
		t.Fatalf("round-r merge rewritten during round r+1: %v", first)
	}
	want := []float32{0, 10, 0, 0, 20}
	for i := range want {
		if second[i] != want[i] {
			t.Fatalf("second round coordinate %d = %v, want %v (stale scratch?)", i, second[i], want[i])
		}
	}
}

// TestReducerWindowRoundTrip: capturing the open window after some folds,
// then restoring it into a fresh reducer and folding the rest, must land on
// the exact bits of the uninterrupted fold — in both the sparse and the
// dense (full-mode) capture regimes.
func TestReducerWindowRoundTrip(t *testing.T) {
	const n = 5_000
	mk := func() (head, tail []struct {
		w  float32
		sp *tensor.SparseVec
	}, dense []float32) {
		rng := tensor.NewRNG(17)
		head = append(head, struct {
			w  float32
			sp *tensor.SparseVec
		}{0.5, mkSparse(rng, n, 0.08)})
		tail = append(tail, struct {
			w  float32
			sp *tensor.SparseVec
		}{1.25, mkSparse(rng, n, 0.12)})
		dense = make([]float32, n)
		for i := range dense {
			dense[i] = float32(rng.Norm())
		}
		return
	}
	for _, withDense := range []bool{false, true} {
		head, tail, dense := mk()

		// Uninterrupted reference.
		ref := NewReducer(4)
		ref.BeginRound()
		for _, c := range head {
			ref.FoldSparse(c.w, c.sp)
		}
		if withDense {
			ref.FoldDense(2, dense)
		}
		for _, c := range tail {
			ref.FoldSparse(c.w, c.sp)
		}
		want := append([]float32(nil), ref.Merge(0.25)...)

		// Crash after head: capture, restore into a fresh reducer, fold tail.
		r1 := NewReducer(4)
		r1.BeginRound()
		for _, c := range head {
			r1.FoldSparse(c.w, c.sp)
		}
		if withDense {
			r1.FoldDense(2, dense)
		}
		idx, vals, isDense := r1.Window()
		if isDense != withDense {
			t.Fatalf("withDense=%v: capture dense=%v", withDense, isDense)
		}
		idx = append([]int32(nil), idx...)
		vals = append([]float32(nil), vals...)

		r2 := NewReducer(4)
		r2.BeginRound()
		r2.RestoreWindow(n, idx, vals, isDense)
		for _, c := range tail {
			r2.FoldSparse(c.w, c.sp)
		}
		got := r2.Merge(0.25)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("withDense=%v coordinate %d: restored %v, uninterrupted %v", withDense, i, got[i], want[i])
			}
		}
	}
}

// TestReducerEmptyAndResize: a round with no folds merges to the prior
// zero state, and a vector-length change rebuilds the partition cleanly.
func TestReducerEmptyAndResize(t *testing.T) {
	r := NewReducer(3)
	r.BeginRound()
	r.FoldDense(1, []float32{1, 2, 3, 4})
	_ = r.Merge(1)
	r.BeginRound()
	r.FoldDense(1, []float32{9, 9}) // resize mid-run
	got := r.Merge(0.5)
	if len(got) != 2 || got[0] != 4.5 || got[1] != 4.5 {
		t.Fatalf("after resize: %v", got)
	}
	r.BeginRound()
	empty := r.Merge(1)
	for i, v := range empty {
		if v != 0 {
			t.Fatalf("empty round coordinate %d = %v, want 0", i, v)
		}
	}
}
