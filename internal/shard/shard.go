// Package shard implements hierarchical sharded aggregation: the parameter
// vector is index-partitioned into P contiguous shards, each owned by one
// per-shard reducer that folds its subrange of every incoming update into a
// private accumulator, and at commit the per-shard partials are normalised
// and merged — in ascending shard/index order — into one double-buffered
// global vector.
//
// The point of the partition is throughput without changing a single bit:
// because the shards own disjoint coordinate ranges and every kernel is
// per-coordinate independent, folding P shards concurrently on the
// tensor.Parallel worker pool performs exactly the arithmetic, in exactly
// the per-coordinate order, that the single-loop streaming aggregator
// performs — so the merged result is bitwise identical to fed.SparseFedAvg
// for every shard count and every thread count, and the fold stage scales
// with cores while the ingest loop stays serial only in arrival order.
//
// Ownership: each shard's accumulator (and its touched-coordinate union) is
// single-buffered private scratch, lazily re-zeroed when the shard first
// participates in a round. The merged global is double-buffered like
// SparseFedAvg's scratch: the vector returned by Merge stays intact while
// the next round accumulates and merges, which is what lets zero-copy
// loopback clients still be reading a broadcast when the next commit lands.
package shard

import (
	"repro/internal/tensor"
)

// shardParMin is the per-update work size (dense length, or stored
// coordinates) above which a fold or merge fans out over the kernel pool;
// below it the dispatch costs more than the arithmetic.
const shardParMin = 1 << 11

// Plan is the index partition: P contiguous shards covering [0, n), balanced
// to within one coordinate (the first n mod P shards are one longer). A
// contiguous partition — rather than striding — keeps every kernel a dense
// or ascending-index loop over one cache-friendly range, and makes a sparse
// update's per-shard subrange one binary search away.
type Plan struct {
	n      int
	shards int
}

// NewPlan builds the balanced contiguous partition of [0, n) into shards
// parts. shards < 1 is treated as 1; shards > n leaves the excess shards
// empty.
func NewPlan(n, shards int) Plan {
	if shards < 1 {
		shards = 1
	}
	return Plan{n: n, shards: shards}
}

// N reports the partitioned vector length.
func (p Plan) N() int { return p.n }

// Shards reports the partition's shard count.
func (p Plan) Shards() int { return p.shards }

// Bounds reports shard s's half-open coordinate range [lo, hi).
func (p Plan) Bounds(s int) (lo, hi int) {
	q, r := p.n/p.shards, p.n%p.shards
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

// shardAcc is one shard's private fold state: the accumulator over its
// contiguous range, and the record of which coordinates the open round has
// touched (mirroring SparseFedAvg's union/full bookkeeping per range —
// scaling a zero coordinate is the identity, so the mode never changes
// bits). seen lags the reducer's round counter until the shard first
// participates, which is what makes clearing lazy and parallel: it happens
// inside the shard's own fold call.
type shardAcc struct {
	lo, hi int
	seen   uint64
	acc    []float32 // len hi-lo, all-zero outside the open round's union
	full   bool      // whole range participates (dense update, or union overflow)
	union  []int32   // ascending global coords touched this round (unless full)
	mrg    []int32   // union merge scratch, swapped with union
}

// mergeBuf is one of the two merged-global buffers, with per-shard records
// of what its last merge dirtied (to re-zero before it is merged into
// again, two rounds later).
type mergeBuf struct {
	buf      []float32
	dirty    [][]int32
	dirtyAll []bool
}

// Reducer is the sharded fold engine. Protocol, mirroring a streaming
// aggregator round: BeginRound, any number of FoldDense/FoldSparse calls
// (each the already-weighted contribution of one update), then Merge. The
// caller owns arrival order and the weight arithmetic (including the total
// being normalised by); the reducer owns the partition, the per-shard
// scratch, and the parallel fan-out.
type Reducer struct {
	shards int
	plan   Plan
	accs   []shardAcc
	bufs   [2]mergeBuf
	cur    int
	round  uint64

	winBuf  []float32 // Window dense-export scratch
	winIdx  []int32   // Window sparse-export scratch
	winVals []float32

	// Pending-operation operands plus persistent range closures over them:
	// building a fresh closure per fold would allocate on every update, so
	// the hot path stays allocation-free by parking the operands in fields
	// for the duration of one dispatch. opX/opSp may alias transport decode
	// scratch and are nilled as soon as the dispatch returns.
	opW         float32
	opScale     float32
	opX         []float32
	opSp        *tensor.SparseVec
	opMb        *mergeBuf
	denseRange  func(lo, hi int)
	sparseRange func(lo, hi int)
	mergeRange  func(lo, hi int)
}

// NewReducer builds a reducer with the given shard count (minimum 1). The
// partition is sized by the first fold's vector length.
func NewReducer(shards int) *Reducer {
	if shards < 1 {
		shards = 1
	}
	r := &Reducer{shards: shards}
	r.denseRange = func(lo, hi int) {
		for s := lo; s < hi; s++ {
			r.foldDenseShard(s, r.opW, r.opX)
		}
	}
	r.sparseRange = func(lo, hi int) {
		for s := lo; s < hi; s++ {
			r.foldSparseShard(s, r.opW, r.opSp)
		}
	}
	r.mergeRange = func(lo, hi int) {
		for s := lo; s < hi; s++ {
			r.mergeShard(r.opMb, s, r.opScale)
		}
	}
	return r
}

// Shards reports the configured shard count.
func (r *Reducer) Shards() int { return r.shards }

// BeginRound opens a new round: the merge target flips to the other buffer
// (the previous Merge result stays intact for one more full round) and every
// shard's scratch is invalidated, to be cleared lazily when the shard next
// participates.
func (r *Reducer) BeginRound() {
	r.cur ^= 1
	r.round++
}

// size (re)builds the partition for vector length n. Steady state — the
// length never changes within a run — this is one comparison.
func (r *Reducer) size(n int) {
	if r.plan.n == n && r.accs != nil {
		return
	}
	r.plan = NewPlan(n, r.shards)
	r.accs = make([]shardAcc, r.shards)
	for s := range r.accs {
		lo, hi := r.plan.Bounds(s)
		r.accs[s] = shardAcc{lo: lo, hi: hi, acc: make([]float32, hi-lo)}
	}
	for b := range r.bufs {
		r.bufs[b] = mergeBuf{
			buf:      make([]float32, n),
			dirty:    make([][]int32, r.shards),
			dirtyAll: make([]bool, r.shards),
		}
	}
}

// ensureRound restores one shard's all-zero accumulator invariant on its
// first participation of the open round, clearing only what its previous
// round touched.
func (r *Reducer) ensureRound(sh *shardAcc) {
	if sh.seen == r.round {
		return
	}
	if sh.full {
		clear(sh.acc)
	} else {
		for _, j := range sh.union {
			sh.acc[int(j)-sh.lo] = 0
		}
	}
	sh.union = sh.union[:0]
	sh.full = false
	sh.seen = r.round
}

// parallel reports whether work of the given size fans out over the kernel
// pool; below the threshold the dispatch costs more than the arithmetic.
// Shards own disjoint state, so either execution produces the same bits.
func (r *Reducer) parallel(work int) bool {
	return len(r.accs) > 1 && work >= shardParMin
}

// FoldDense folds one dense already-weighted contribution: every shard adds
// w·x over its range — per coordinate, exactly WeightedFedAvg's Axpy.
func (r *Reducer) FoldDense(w float32, x []float32) {
	r.size(len(x))
	if r.parallel(len(x)) {
		r.opW, r.opX = w, x
		tensor.Parallel(len(r.accs), r.denseRange)
		r.opX = nil
		return
	}
	for s := range r.accs {
		r.foldDenseShard(s, w, x)
	}
}

// foldDenseShard folds one shard's range of a dense contribution.
func (r *Reducer) foldDenseShard(s int, w float32, x []float32) {
	sh := &r.accs[s]
	r.ensureRound(sh)
	tensor.AxpySlice(sh.acc, w, x[sh.lo:sh.hi])
	sh.full = true
}

// FoldSparse folds one sparse already-weighted contribution: each shard
// locates its contiguous subrange of the ascending index list by binary
// search and folds only that, maintaining its own touched-coordinate union
// (with the same quarter-of-the-range overflow to full mode as the
// single-loop aggregator). A shard with no coordinate in range does not
// participate.
func (r *Reducer) FoldSparse(w float32, x *tensor.SparseVec) {
	r.size(x.N)
	if r.parallel(len(x.Indices)) {
		r.opW, r.opSp = w, x
		tensor.Parallel(len(r.accs), r.sparseRange)
		r.opSp = nil
		return
	}
	for s := range r.accs {
		r.foldSparseShard(s, w, x)
	}
}

// foldSparseShard folds one shard's subrange of a sparse contribution.
func (r *Reducer) foldSparseShard(s int, w float32, x *tensor.SparseVec) {
	sh := &r.accs[s]
	i0 := tensor.SearchInt32(x.Indices, int32(sh.lo))
	i1 := i0 + tensor.SearchInt32(x.Indices[i0:], int32(sh.hi))
	if i0 == i1 {
		return
	}
	r.ensureRound(sh)
	idx, val := x.Indices[i0:i1], x.Values[i0:i1]
	tensor.AxpyOffset(sh.acc, w, idx, val, int32(sh.lo))
	if sh.full {
		return
	}
	if !equalInt32(sh.union, idx) {
		sh.mrg = tensor.MergeIndices(sh.mrg, sh.union, idx)
		sh.union, sh.mrg = sh.mrg, sh.union
		if len(sh.union)*4 > sh.hi-sh.lo {
			sh.full = true
		}
	}
}

// Merge closes the round: every shard re-zeroes what this buffer's previous
// merge left in its range, then scatters scale·acc at its touched
// coordinates (or sweeps its whole range when full). The semantic write
// order is ascending shard then ascending index; concurrent execution is
// indistinguishable because the ranges are disjoint. The returned vector
// aliases the reducer's double-buffered scratch: it stays intact through the
// whole next round and is rewritten by the merge after that.
func (r *Reducer) Merge(scale float32) []float32 {
	mb := &r.bufs[r.cur]
	if r.parallel(r.plan.n) {
		r.opMb, r.opScale = mb, scale
		tensor.Parallel(len(r.accs), r.mergeRange)
		r.opMb = nil
		return mb.buf
	}
	for s := range r.accs {
		r.mergeShard(mb, s, scale)
	}
	return mb.buf
}

// mergeShard normalises and writes one shard's partial into the merge
// buffer, restoring the all-zero invariant for what the buffer's previous
// merge left in the shard's range.
func (r *Reducer) mergeShard(mb *mergeBuf, s int, scale float32) {
	sh := &r.accs[s]
	if mb.dirtyAll[s] {
		clear(mb.buf[sh.lo:sh.hi])
	} else {
		for _, j := range mb.dirty[s] {
			mb.buf[j] = 0
		}
	}
	if sh.seen != r.round {
		mb.dirty[s] = mb.dirty[s][:0]
		mb.dirtyAll[s] = false
		return
	}
	if sh.full {
		tensor.ScaleInto(mb.buf[sh.lo:sh.hi], sh.acc, scale)
		mb.dirty[s] = mb.dirty[s][:0]
		mb.dirtyAll[s] = true
		return
	}
	tensor.ScaleScatterOffset(mb.buf, scale, sh.acc, sh.union, int32(sh.lo))
	mb.dirty[s] = append(mb.dirty[s][:0], sh.union...)
	mb.dirtyAll[s] = false
}

// Window exports the open round's raw (unscaled) partial accumulation for a
// durable mid-window snapshot. When any participating shard runs in full
// mode the export is dense: idx is nil and vals is the whole partial vector.
// Otherwise idx holds the ascending union of touched coordinates across
// shards and vals their partial sums. Both returns alias reducer scratch
// valid until the next fold, merge, or Window call.
func (r *Reducer) Window() (idx []int32, vals []float32, dense bool) {
	for s := range r.accs {
		sh := &r.accs[s]
		if sh.seen == r.round && sh.full {
			dense = true
			break
		}
	}
	if dense {
		if cap(r.winBuf) < r.plan.n {
			r.winBuf = make([]float32, r.plan.n)
		}
		r.winBuf = r.winBuf[:r.plan.n]
		clear(r.winBuf)
		for s := range r.accs {
			sh := &r.accs[s]
			if sh.seen != r.round {
				continue
			}
			if sh.full {
				copy(r.winBuf[sh.lo:sh.hi], sh.acc)
				continue
			}
			for _, j := range sh.union {
				r.winBuf[j] = sh.acc[int(j)-sh.lo]
			}
		}
		return nil, r.winBuf, true
	}
	r.winIdx = r.winIdx[:0]
	r.winVals = r.winVals[:0]
	for s := range r.accs {
		sh := &r.accs[s]
		if sh.seen != r.round {
			continue
		}
		r.winIdx = append(r.winIdx, sh.union...)
		for _, j := range sh.union {
			r.winVals = append(r.winVals, sh.acc[int(j)-sh.lo])
		}
	}
	return r.winIdx, r.winVals, false
}

// RestoreWindow reinstates a partial accumulation captured by Window into a
// freshly begun round (call BeginRound first): subsequent folds stack on top
// of the restored partials exactly as they would have on the uninterrupted
// originals. A dense capture (idx nil, len(vals) == n) restores every shard
// in full mode; a sparse capture restores each shard's union subrange.
func (r *Reducer) RestoreWindow(n int, idx []int32, vals []float32, dense bool) {
	r.size(n)
	if dense {
		for s := range r.accs {
			sh := &r.accs[s]
			r.ensureRound(sh)
			copy(sh.acc, vals[sh.lo:sh.hi])
			sh.full = true
		}
		return
	}
	for s := range r.accs {
		sh := &r.accs[s]
		i0 := tensor.SearchInt32(idx, int32(sh.lo))
		i1 := i0 + tensor.SearchInt32(idx[i0:], int32(sh.hi))
		if i0 == i1 {
			continue
		}
		r.ensureRound(sh)
		for i := i0; i < i1; i++ {
			sh.acc[int(idx[i])-sh.lo] = vals[i]
		}
		sh.union = append(sh.union[:0], idx[i0:i1]...)
		sh.full = len(sh.union)*4 > sh.hi-sh.lo
	}
}

// equalInt32 reports whether two index lists are element-wise equal (the
// shared-prune-mask fast path: identical lists skip the merge).
func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
