package data

import (
	"repro/internal/tensor"
)

// ClientTask is a client's private view of one task: a non-IID subset of the
// task's classes and samples. Test keeps every test sample of the client's
// classes so accuracy is measured on the client's own distribution.
type ClientTask struct {
	TaskID  int
	Classes []int
	Train   []Sample
	Test    []Sample
}

// AllocConfig controls the FedRep-style heterogeneous allocation (§V-A):
// each client receives MinClasses–MaxClasses of each task's classes and
// MinFrac–MaxFrac of each chosen class's training samples.
type AllocConfig struct {
	MinClasses int
	MaxClasses int
	MinFrac    float64
	MaxFrac    float64
	Seed       uint64
}

// DefaultAlloc mirrors the paper: 2–5 classes per client per task, 5–10 % of
// each class's samples.
func DefaultAlloc(seed uint64) AllocConfig {
	return AllocConfig{MinClasses: 2, MaxClasses: 5, MinFrac: 0.05, MaxFrac: 0.10, Seed: seed}
}

// CIAlloc uses larger fractions so the tiny CI-scale datasets still give
// every client enough samples to learn from.
func CIAlloc(seed uint64) AllocConfig {
	return AllocConfig{MinClasses: 2, MaxClasses: 3, MinFrac: 0.4, MaxFrac: 0.8, Seed: seed}
}

// Federate assigns every task to every client with a private class subset,
// sample subset and task order ("each client has all tasks of a dataset and
// its distinct task sequence"). The result is indexed [client][position in
// that client's sequence].
func Federate(tasks []Task, numClients int, cfg AllocConfig) [][]ClientTask {
	root := tensor.NewRNG(cfg.Seed)
	out := make([][]ClientTask, numClients)
	// Pre-index samples by class for O(1) class slicing.
	trainByClass := map[int][]Sample{}
	testByClass := map[int][]Sample{}
	for _, t := range tasks {
		for _, s := range t.Train {
			trainByClass[s.Y] = append(trainByClass[s.Y], s)
		}
		for _, s := range t.Test {
			testByClass[s.Y] = append(testByClass[s.Y], s)
		}
	}
	for c := 0; c < numClients; c++ {
		r := root.Fork(uint64(c) + 1)
		order := r.Perm(len(tasks))
		seq := make([]ClientTask, 0, len(tasks))
		for _, ti := range order {
			task := tasks[ti]
			nc := cfg.MinClasses
			if cfg.MaxClasses > cfg.MinClasses {
				nc += r.Intn(cfg.MaxClasses - cfg.MinClasses + 1)
			}
			if nc > len(task.Classes) {
				nc = len(task.Classes)
			}
			perm := r.Perm(len(task.Classes))
			ct := ClientTask{TaskID: task.ID}
			for i := 0; i < nc; i++ {
				class := task.Classes[perm[i]]
				ct.Classes = append(ct.Classes, class)
				frac := cfg.MinFrac + (cfg.MaxFrac-cfg.MinFrac)*r.Float64()
				pool := trainByClass[class]
				n := int(float64(len(pool))*frac + 0.5)
				if n < 1 && len(pool) > 0 {
					n = 1
				}
				for _, j := range r.Perm(len(pool))[:n] {
					ct.Train = append(ct.Train, pool[j])
				}
				ct.Test = append(ct.Test, testByClass[class]...)
			}
			seq = append(seq, ct)
		}
		out[c] = seq
	}
	return out
}

// MergeDatasets concatenates datasets into one combined label space (labels
// of later datasets are offset past earlier ones). The Fig. 7 experiment
// merges MiniImageNet + CIFAR100 + TinyImageNet this way and re-splits the
// result into 80 tasks.
func MergeDatasets(name string, ds ...*Dataset) *Dataset {
	if len(ds) == 0 {
		panic("data: MergeDatasets needs at least one dataset")
	}
	out := &Dataset{Name: name, C: ds[0].C, H: ds[0].H, W: ds[0].W}
	offset := 0
	for _, d := range ds {
		if d.C != out.C || d.H != out.H || d.W != out.W {
			panic("data: MergeDatasets geometry mismatch")
		}
		for _, s := range d.Train {
			out.Train = append(out.Train, Sample{X: s.X, Y: s.Y + offset})
		}
		for _, s := range d.Test {
			out.Test = append(out.Test, Sample{X: s.X, Y: s.Y + offset})
		}
		offset += d.NumClasses
	}
	out.NumClasses = offset
	return out
}

// MergeTasks concatenates several task lists into one long sequence with
// re-assigned task ids, used by the 80-task experiment (Fig. 7) that chains
// MiniImageNet + CIFAR100 + TinyImageNet. Class ids are offset per source
// dataset so they never collide; totalClasses reports the combined label
// space size.
func MergeTasks(lists ...[]Task) (merged []Task, totalClasses int) {
	offset := 0
	id := 0
	for _, list := range lists {
		maxClass := -1
		for _, t := range list {
			nt := Task{ID: id}
			for _, c := range t.Classes {
				nt.Classes = append(nt.Classes, c+offset)
				if c > maxClass {
					maxClass = c
				}
			}
			for _, s := range t.Train {
				nt.Train = append(nt.Train, Sample{X: s.X, Y: s.Y + offset})
				if s.Y > maxClass {
					maxClass = s.Y
				}
			}
			for _, s := range t.Test {
				nt.Test = append(nt.Test, Sample{X: s.X, Y: s.Y + offset})
				if s.Y > maxClass {
					maxClass = s.Y
				}
			}
			merged = append(merged, nt)
			id++
		}
		offset += maxClass + 1
	}
	return merged, offset
}
