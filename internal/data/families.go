package data

// Family describes one of the paper's benchmarks: its class/task structure
// and the synthetic style standing in for its visual statistics.
type Family struct {
	Name          string
	NumClasses    int
	NumTasks      int
	TrainPerClass int // at Full scale (scaled-down absolute counts)
	TestPerClass  int
	Noise         float64
	Shift         int
	ProtoParts    int
}

// The five evaluation benchmarks (§V-A) plus the SVHN hyperparameter-search
// stand-in. Per-class sample counts are scaled from the paper's (500 train /
// 100 test per class for CIFAR-100) by ~10× so Full runs stay tractable on a
// CPU; the task structure is exact.
var (
	// CIFAR100: 100 classes, 10 tasks × 10 classes.
	CIFAR100 = Family{Name: "CIFAR100", NumClasses: 100, NumTasks: 10,
		TrainPerClass: 50, TestPerClass: 10, Noise: 0.35, Shift: 2, ProtoParts: 3}
	// FC100: same structure as CIFAR100 but few-shot-style harder classes
	// (more noise, more pattern parts).
	FC100 = Family{Name: "FC100", NumClasses: 100, NumTasks: 10,
		TrainPerClass: 50, TestPerClass: 10, Noise: 0.5, Shift: 2, ProtoParts: 4}
	// CORe50: 550 classes, 11 tasks × 50 classes (continuous object
	// recognition: low noise, larger shifts emulating camera motion).
	CORe50 = Family{Name: "CORe50", NumClasses: 550, NumTasks: 11,
		TrainPerClass: 30, TestPerClass: 10, Noise: 0.25, Shift: 3, ProtoParts: 3}
	// MiniImageNet: 100 classes, 10 tasks × 10 classes.
	MiniImageNet = Family{Name: "MiniImageNet", NumClasses: 100, NumTasks: 10,
		TrainPerClass: 50, TestPerClass: 10, Noise: 0.4, Shift: 2, ProtoParts: 4}
	// TinyImageNet: 200 classes, 20 tasks × 10 classes.
	TinyImageNet = Family{Name: "TinyImageNet", NumClasses: 200, NumTasks: 20,
		TrainPerClass: 50, TestPerClass: 5, Noise: 0.45, Shift: 2, ProtoParts: 4}
	// SVHN: 10 classes, 2 tasks × 5 classes; used only for hyperparameter
	// search, mirroring §V-B.
	SVHN = Family{Name: "SVHN", NumClasses: 10, NumTasks: 2,
		TrainPerClass: 50, TestPerClass: 10, Noise: 0.3, Shift: 1, ProtoParts: 3}
)

// Families lists the five evaluation benchmarks in the paper's order.
var Families = []Family{CIFAR100, FC100, CORe50, MiniImageNet, TinyImageNet}

// FamilyByName finds a family by its paper name; ok is false when unknown.
func FamilyByName(name string) (Family, bool) {
	all := append(append([]Family{}, Families...), SVHN)
	for _, f := range all {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Build generates the dataset at the given scale and splits it into tasks.
// CI scale divides class and sample counts so a full federated run finishes
// in seconds; task structure (number of tasks) is preserved.
func (f Family) Build(scale Scale, seed uint64) (*Dataset, []Task) {
	cfg := Config{
		Name:          f.Name,
		NumClasses:    f.NumClasses,
		TrainPerClass: f.TrainPerClass,
		TestPerClass:  f.TestPerClass,
		C:             3, H: 16, W: 16,
		Noise: f.Noise, Shift: f.Shift, ProtoParts: f.ProtoParts,
		Seed: seed,
	}
	if scale == CI {
		// Keep the task count; shrink classes per task to 4 and samples.
		cfg.NumClasses = f.NumTasks * 4
		cfg.TrainPerClass = 10
		cfg.TestPerClass = 3
		cfg.H, cfg.W = 12, 12
	}
	ds := Generate(cfg)
	return ds, SplitTasks(ds, f.NumTasks)
}
