package data

import (
	"testing"

	"repro/internal/tensor"
)

func TestGenerateCountsAndShapes(t *testing.T) {
	d := Generate(Config{Name: "t", NumClasses: 5, TrainPerClass: 7, TestPerClass: 3,
		C: 3, H: 8, W: 8, Noise: 0.2, Seed: 1})
	if len(d.Train) != 35 || len(d.Test) != 15 {
		t.Fatalf("train %d test %d", len(d.Train), len(d.Test))
	}
	if d.InputLen() != 3*8*8 {
		t.Fatalf("InputLen = %d", d.InputLen())
	}
	for _, s := range d.Train {
		if len(s.X) != d.InputLen() {
			t.Fatal("sample length mismatch")
		}
		if s.Y < 0 || s.Y >= 5 {
			t.Fatalf("label out of range: %d", s.Y)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", NumClasses: 3, TrainPerClass: 2, TestPerClass: 1,
		C: 1, H: 4, W: 4, Noise: 0.1, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a.Train {
		for j := range a.Train[i].X {
			if a.Train[i].X[j] != b.Train[i].X[j] {
				t.Fatal("generation must be deterministic for a fixed seed")
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := Config{Name: "t", NumClasses: 1, TrainPerClass: 1, TestPerClass: 0,
		C: 1, H: 4, W: 4, Seed: 1}
	a := Generate(cfg)
	cfg.Seed = 2
	b := Generate(cfg)
	same := true
	for j := range a.Train[0].X {
		if a.Train[0].X[j] != b.Train[0].X[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must give different data")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Same-class samples must be closer to their own prototype mean than to
	// other classes' means — otherwise no model could learn the data.
	d := Generate(Config{Name: "t", NumClasses: 4, TrainPerClass: 20, TestPerClass: 5,
		C: 3, H: 8, W: 8, Noise: 0.3, Shift: 1, Seed: 3})
	dim := d.InputLen()
	means := make([][]float64, 4)
	counts := make([]int, 4)
	for i := range means {
		means[i] = make([]float64, dim)
	}
	for _, s := range d.Train {
		for j, v := range s.X {
			means[s.Y][j] += float64(v)
		}
		counts[s.Y]++
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for _, s := range d.Test {
		best, bestD := -1, 1e300
		for c := range means {
			var dist float64
			for j, v := range s.X {
				dd := float64(v) - means[c][j]
				dist += dd * dd
			}
			if dist < bestD {
				best, bestD = c, dist
			}
		}
		if best == s.Y {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(d.Test)); acc < 0.75 {
		t.Fatalf("nearest-mean accuracy %v; classes not separable enough", acc)
	}
}

func TestSplitTasks(t *testing.T) {
	d := Generate(Config{Name: "t", NumClasses: 12, TrainPerClass: 2, TestPerClass: 1,
		C: 1, H: 4, W: 4, Seed: 1})
	tasks := SplitTasks(d, 4)
	if len(tasks) != 4 {
		t.Fatalf("%d tasks", len(tasks))
	}
	seen := map[int]bool{}
	for ti, task := range tasks {
		if len(task.Classes) != 3 {
			t.Fatalf("task %d has %d classes", ti, len(task.Classes))
		}
		for _, c := range task.Classes {
			if seen[c] {
				t.Fatalf("class %d in two tasks", c)
			}
			seen[c] = true
		}
		if len(task.Train) != 6 || len(task.Test) != 3 {
			t.Fatalf("task %d: train %d test %d", ti, len(task.Train), len(task.Test))
		}
		for _, s := range task.Train {
			found := false
			for _, c := range task.Classes {
				if s.Y == c {
					found = true
				}
			}
			if !found {
				t.Fatal("sample assigned to wrong task")
			}
		}
	}
}

func TestSplitTasksRequiresDivisibility(t *testing.T) {
	d := Generate(Config{Name: "t", NumClasses: 10, TrainPerClass: 1, TestPerClass: 0,
		C: 1, H: 2, W: 2, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-divisible split")
		}
	}()
	SplitTasks(d, 3)
}

func TestBatch(t *testing.T) {
	samples := []Sample{
		{X: []float32{1, 2, 3, 4}, Y: 0},
		{X: []float32{5, 6, 7, 8}, Y: 1},
	}
	x, labels := Batch(samples, []int{1, 0}, 1, 2, 2)
	if x.Shape[0] != 2 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if x.Data[0] != 5 || x.Data[4] != 1 {
		t.Fatal("batch data order wrong")
	}
	if labels[0] != 1 || labels[1] != 0 {
		t.Fatal("labels wrong")
	}
}

func TestFamiliesStructure(t *testing.T) {
	cases := []struct {
		f       Family
		classes int
		tasks   int
		perTask int
	}{
		{CIFAR100, 100, 10, 10},
		{FC100, 100, 10, 10},
		{CORe50, 550, 11, 50},
		{MiniImageNet, 100, 10, 10},
		{TinyImageNet, 200, 20, 10},
		{SVHN, 10, 2, 5},
	}
	for _, c := range cases {
		if c.f.NumClasses != c.classes || c.f.NumTasks != c.tasks {
			t.Fatalf("%s: %d classes %d tasks", c.f.Name, c.f.NumClasses, c.f.NumTasks)
		}
		if c.f.NumClasses/c.f.NumTasks != c.perTask {
			t.Fatalf("%s: %d classes per task", c.f.Name, c.f.NumClasses/c.f.NumTasks)
		}
	}
}

func TestFamilyByName(t *testing.T) {
	f, ok := FamilyByName("CORe50")
	if !ok || f.NumClasses != 550 {
		t.Fatal("FamilyByName CORe50 failed")
	}
	if _, ok := FamilyByName("nope"); ok {
		t.Fatal("unknown family must not resolve")
	}
}

func TestFamilyBuildCI(t *testing.T) {
	ds, tasks := CIFAR100.Build(CI, 1)
	if len(tasks) != 10 {
		t.Fatalf("CI scale must keep task count: %d", len(tasks))
	}
	if ds.NumClasses != 40 {
		t.Fatalf("CI classes = %d", ds.NumClasses)
	}
}

func TestFamilyBuildFull(t *testing.T) {
	ds, tasks := SVHN.Build(Full, 1)
	if ds.NumClasses != 10 || len(tasks) != 2 {
		t.Fatalf("full SVHN: %d classes %d tasks", ds.NumClasses, len(tasks))
	}
}

func TestFederateNonIID(t *testing.T) {
	_, tasks := CIFAR100.Build(CI, 2)
	clients := Federate(tasks, 6, CIAlloc(5))
	if len(clients) != 6 {
		t.Fatalf("%d clients", len(clients))
	}
	ordersDiffer := false
	for ci, seq := range clients {
		if len(seq) != len(tasks) {
			t.Fatalf("client %d has %d tasks", ci, len(seq))
		}
		for _, ct := range seq {
			if len(ct.Classes) < 2 || len(ct.Classes) > 3 {
				t.Fatalf("client %d task %d: %d classes", ci, ct.TaskID, len(ct.Classes))
			}
			if len(ct.Train) == 0 || len(ct.Test) == 0 {
				t.Fatalf("client %d task %d empty", ci, ct.TaskID)
			}
			for _, s := range ct.Train {
				ok := false
				for _, c := range ct.Classes {
					if s.Y == c {
						ok = true
					}
				}
				if !ok {
					t.Fatal("train sample outside client classes")
				}
			}
		}
		if ci > 0 && !sameOrder(clients[0], seq) {
			ordersDiffer = true
		}
	}
	if !ordersDiffer {
		t.Fatal("clients must have distinct task sequences")
	}
}

func sameOrder(a, b []ClientTask) bool {
	for i := range a {
		if a[i].TaskID != b[i].TaskID {
			return false
		}
	}
	return true
}

func TestFederateDeterministic(t *testing.T) {
	_, tasks := SVHN.Build(CI, 2)
	a := Federate(tasks, 3, CIAlloc(9))
	b := Federate(tasks, 3, CIAlloc(9))
	for ci := range a {
		for ti := range a[ci] {
			if len(a[ci][ti].Train) != len(b[ci][ti].Train) {
				t.Fatal("allocation must be deterministic")
			}
		}
	}
}

func TestFederateHeterogeneity(t *testing.T) {
	// Different clients should get different class subsets for the same
	// task — the whole point of the non-IID allocation.
	_, tasks := CIFAR100.Build(CI, 3)
	clients := Federate(tasks, 8, CIAlloc(11))
	task0Classes := map[string]bool{}
	for _, seq := range clients {
		for _, ct := range seq {
			if ct.TaskID == 0 {
				key := ""
				for _, c := range ct.Classes {
					key += string(rune('A' + c%26))
				}
				task0Classes[key] = true
			}
		}
	}
	if len(task0Classes) < 2 {
		t.Fatal("all clients got identical class subsets")
	}
}

func TestMergeTasks(t *testing.T) {
	_, a := SVHN.Build(CI, 1)
	_, b := SVHN.Build(CI, 2)
	merged, total := MergeTasks(a, b)
	if len(merged) != 4 {
		t.Fatalf("merged %d tasks", len(merged))
	}
	if total != 16 { // CI SVHN: 2 tasks × 4 classes each → 8 classes per dataset
		t.Fatalf("total classes = %d, want 16", total)
	}
	for i, task := range merged {
		if task.ID != i {
			t.Fatalf("task ids must be sequential: %d at %d", task.ID, i)
		}
	}
	// Second dataset's classes must be offset beyond the first's.
	for _, task := range merged[2:] {
		for _, c := range task.Classes {
			if c < 8 {
				t.Fatalf("class collision after merge: %d", c)
			}
		}
	}
}

func TestScaleString(t *testing.T) {
	if CI.String() != "ci" || Full.String() != "full" {
		t.Fatal("Scale strings")
	}
}

func TestPerturbShiftStaysFinite(t *testing.T) {
	r := tensor.NewRNG(1)
	proto := make([]float32, 3*4*4)
	r.FillNorm(proto, 1)
	cfg := Config{C: 3, H: 4, W: 4, Noise: 0.1, Shift: 3}
	out := perturb(r, proto, cfg)
	if len(out) != len(proto) {
		t.Fatal("perturb length mismatch")
	}
}
