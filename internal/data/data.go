// Package data provides the continual-learning benchmarks. The paper
// evaluates on CIFAR-100, FC100, CORe50, MiniImageNet and TinyImageNet;
// those are external downloads this offline module cannot fetch, so each is
// replaced by a deterministic synthetic family with the same task structure
// (class counts, tasks × classes-per-task, train/test split) and a
// per-family visual style. See DESIGN.md ("Substitutions") for why this
// preserves the evaluation's comparative shape.
//
// Images are CHW float32. Every class has a structured prototype (a mixture
// of oriented gratings, colour fields and Gaussian blobs seeded by the class
// id); samples are the prototype plus Gaussian pixel noise and a small
// random translation, so classifiers must learn genuine features and task
// switches cause genuine forgetting.
package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Sample is one labelled image. Y is the global class id within the dataset.
type Sample struct {
	X []float32
	Y int
}

// Dataset is a full benchmark: all classes, train and test splits.
type Dataset struct {
	Name       string
	NumClasses int
	C, H, W    int
	Train      []Sample
	Test       []Sample
}

// InputLen returns the flattened image length.
func (d *Dataset) InputLen() int { return d.C * d.H * d.W }

// Config controls a synthetic family's generation.
type Config struct {
	Name          string
	NumClasses    int
	C, H, W       int
	TrainPerClass int
	TestPerClass  int
	Noise         float64 // pixel noise std relative to signal
	Shift         int     // max |translation| in pixels
	ProtoParts    int     // number of pattern components per prototype
	Seed          uint64
}

// Generate builds a synthetic dataset from the config.
func Generate(cfg Config) *Dataset {
	if cfg.C == 0 {
		cfg.C = 3
	}
	if cfg.H == 0 {
		cfg.H = 16
	}
	if cfg.W == 0 {
		cfg.W = 16
	}
	if cfg.ProtoParts == 0 {
		cfg.ProtoParts = 3
	}
	rng := tensor.NewRNG(cfg.Seed)
	d := &Dataset{Name: cfg.Name, NumClasses: cfg.NumClasses, C: cfg.C, H: cfg.H, W: cfg.W}
	for class := 0; class < cfg.NumClasses; class++ {
		proto := classPrototype(rng.Fork(uint64(class)+1), cfg)
		sr := rng.Fork(uint64(class) + 100003)
		for i := 0; i < cfg.TrainPerClass; i++ {
			d.Train = append(d.Train, Sample{X: perturb(sr, proto, cfg), Y: class})
		}
		for i := 0; i < cfg.TestPerClass; i++ {
			d.Test = append(d.Test, Sample{X: perturb(sr, proto, cfg), Y: class})
		}
	}
	return d
}

// classPrototype builds a structured per-class pattern: a few oriented
// sinusoidal gratings plus Gaussian blobs, per channel. Classes differ in
// frequency, orientation, blob placement and channel mixture, which gives
// nearby class ids unrelated prototypes.
func classPrototype(r *tensor.RNG, cfg Config) []float32 {
	p := make([]float32, cfg.C*cfg.H*cfg.W)
	for part := 0; part < cfg.ProtoParts; part++ {
		freq := 0.5 + 2.5*r.Float64()
		theta := 2 * math.Pi * r.Float64()
		phase := 2 * math.Pi * r.Float64()
		amp := 0.4 + 0.6*r.Float64()
		cx, cy := r.Float64()*float64(cfg.W), r.Float64()*float64(cfg.H)
		sigma := 1.5 + 3*r.Float64()
		chanW := make([]float64, cfg.C)
		for c := range chanW {
			chanW[c] = r.Norm()
		}
		ct, st := math.Cos(theta), math.Sin(theta)
		for c := 0; c < cfg.C; c++ {
			base := c * cfg.H * cfg.W
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					u := (float64(x)*ct + float64(y)*st) * freq * 2 * math.Pi / float64(cfg.W)
					grat := math.Sin(u + phase)
					dx, dy := float64(x)-cx, float64(y)-cy
					blob := math.Exp(-(dx*dx + dy*dy) / (2 * sigma * sigma))
					p[base+y*cfg.W+x] += float32(amp * chanW[c] * (0.6*grat + 0.8*blob))
				}
			}
		}
	}
	return p
}

// perturb produces one sample: translated prototype plus pixel noise.
func perturb(r *tensor.RNG, proto []float32, cfg Config) []float32 {
	out := make([]float32, len(proto))
	dx, dy := 0, 0
	if cfg.Shift > 0 {
		dx = r.Intn(2*cfg.Shift+1) - cfg.Shift
		dy = r.Intn(2*cfg.Shift+1) - cfg.Shift
	}
	for c := 0; c < cfg.C; c++ {
		base := c * cfg.H * cfg.W
		for y := 0; y < cfg.H; y++ {
			sy := y + dy
			for x := 0; x < cfg.W; x++ {
				sx := x + dx
				var v float32
				if sy >= 0 && sy < cfg.H && sx >= 0 && sx < cfg.W {
					v = proto[base+sy*cfg.W+sx]
				}
				out[base+y*cfg.W+x] = v + float32(r.Norm()*cfg.Noise)
			}
		}
	}
	return out
}

// Task is one continual-learning task: a subset of classes with the samples
// belonging to them. Labels stay global (the model has one head over all
// dataset classes; evaluation is task-aware via the Classes list).
type Task struct {
	ID      int
	Classes []int
	Train   []Sample
	Test    []Sample
}

// SplitTasks partitions a dataset into numTasks tasks of consecutive class
// ranges, following the benchmark protocol of the paper (§V-A: data points
// are equally split into each task and class).
func SplitTasks(d *Dataset, numTasks int) []Task {
	if d.NumClasses%numTasks != 0 {
		panic(fmt.Sprintf("data: %d classes not divisible by %d tasks", d.NumClasses, numTasks))
	}
	per := d.NumClasses / numTasks
	tasks := make([]Task, numTasks)
	for t := range tasks {
		tasks[t].ID = t
		for c := t * per; c < (t+1)*per; c++ {
			tasks[t].Classes = append(tasks[t].Classes, c)
		}
	}
	classTask := make([]int, d.NumClasses)
	for t := range tasks {
		for _, c := range tasks[t].Classes {
			classTask[c] = t
		}
	}
	for _, s := range d.Train {
		t := classTask[s.Y]
		tasks[t].Train = append(tasks[t].Train, s)
	}
	for _, s := range d.Test {
		t := classTask[s.Y]
		tasks[t].Test = append(tasks[t].Test, s)
	}
	return tasks
}

// Batch assembles samples[idx] into an input tensor and label slice.
func Batch(samples []Sample, idx []int, c, h, w int) (*tensor.Tensor, []int) {
	n := len(idx)
	x := tensor.New(n, c, h, w)
	labels := make([]int, n)
	imgLen := c * h * w
	for i, j := range idx {
		copy(x.Data[i*imgLen:(i+1)*imgLen], samples[j].X)
		labels[i] = samples[j].Y
	}
	return x, labels
}

// Scale selects the experiment size: Full mirrors the paper's sample counts
// (slow, offline runs); CI shrinks everything so tests and benches finish on
// a laptop while preserving comparative behaviour.
type Scale int

// Scales.
const (
	CI Scale = iota
	Full
)

func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "ci"
}
