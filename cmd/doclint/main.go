// Command doclint is a deprecated alias for the exported-godoc analyzer of
// the fedlint suite, kept so existing scripts and muscle memory keep
// working. New invocations should use the suite directly:
//
//	go run ./cmd/fedlint -only exported-godoc [patterns...]
//
// which adds //lint:ignore suppression, position-accurate diagnostics and
// the rest of the analyzers. The old positional directory arguments are
// accepted and forwarded as package patterns; exit codes are unchanged
// (1 findings, 2 analysis error).
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	fmt.Fprintln(os.Stderr, "doclint: deprecated; use: go run ./cmd/fedlint -only exported-godoc")
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./internal/fed", "./internal/tensor"}
	}
	suite := &analysis.Suite{Analyzers: []*analysis.Analyzer{analysis.ExportedGodoc}}
	loader := analysis.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	diags, err := suite.Run(pkgs, loader.Fset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", len(diags))
		os.Exit(1)
	}
}
