// Command doclint checks that every exported identifier in the given
// package directories carries a doc comment — the repository's
// self-contained equivalent of revive's "exported" rule, run in CI next to
// go vet so the godoc contract on internal/fed and internal/tensor cannot
// regress.
//
// Usage:
//
//	doclint ./internal/fed ./internal/tensor
//
// Exits non-zero when any finding is reported.
package main

import (
	"fmt"
	"os"

	"repro/internal/doclint"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"./internal/fed", "./internal/tensor"}
	}
	bad := 0
	for _, dir := range dirs {
		findings, err := doclint.Lint(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Printf("%s/%s\n", dir, f)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}
