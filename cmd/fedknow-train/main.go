// Command fedknow-train runs one federated continual-learning job with
// explicit knobs and prints the per-task accuracy, forgetting rate, time and
// communication accounting, streaming each row as the task finishes.
//
// By default the whole federation runs in-process over the loopback
// transport. With -listen / -connect the same job runs over TCP: one server
// process schedules rounds and aggregates, one process per client trains —
// and the result is bit-identical to the loopback run of the same seed.
//
// Usage:
//
//	fedknow-train -dataset CIFAR100 -method FedKNOW -clients 4 -rounds 2
//	fedknow-train -dataset MiniImageNet -method GEM -arch ResNet18
//	fedknow-train -dataset CIFAR100 -dropout 0.2 -bandwidth 51200
//
//	# distributed: server plus one process per client
//	fedknow-train -dataset CIFAR100 -clients 2 -listen :7070 &
//	fedknow-train -dataset CIFAR100 -clients 2 -connect localhost:7070 -client-id 0 &
//	fedknow-train -dataset CIFAR100 -clients 2 -connect localhost:7070 -client-id 1
//
// Wire runs ship parameters with the lossless sparse codec by default (bit-
// identical to loopback). -compress fp16|int8 opts into lossy quantisation
// (2×/4× fewer bytes; all processes must agree), and -wire-timeout bounds
// each message so a hung peer errors instead of wedging the round.
//
// -scheduler async switches the round policy to staleness-bounded buffered
// asynchrony (see docs/ARCHITECTURE.md and README "Choosing a scheduler"):
// clients train continuously against the latest committed global, the
// server commits every -async-commit-k accepted updates, deweights stale
// updates by 1/(1+staleness)^alpha, rejects those beyond -max-staleness,
// and a dropped connection evicts that client instead of aborting the run.
//
// Churn is survivable end to end under async: the server keeps accepting
// rejoin handshakes for evicted seats, and a client run with -reconnect N
// redials a dropped connection (capped exponential backoff, up to N
// consecutive attempts), presents its ID, job fingerprint and last-seen
// global version, and resumes the task from the server's catch-up reply
// without losing local training state. Under -scheduler sync a dropped
// connection aborts the run by default (reproducibility); -sync-evict opts
// into evicting the lost client and finishing with the survivors.
//
// The server itself is crash-only with -snapshot-dir: every commit and task
// boundary is atomically snapshotted (versioned global plus the full seat
// book), and a restarted server process finding a snapshot resumes the run
// at the recorded task and version, re-admitting the -reconnect cohort
// through the same rejoin path — clients retrain at most the uploads since
// the last commit. -snapshot-keep bounds how many previous snapshots are
// retained as torn-write fallbacks.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

// job is everything derived from the flags that both wire roles and the
// loopback run share; deriving it identically in every process is what makes
// a distributed run reproduce the in-process one.
type job struct {
	cfg       fed.Config
	wire      fed.WireOptions
	reconnect int    // client role: max consecutive rejoin attempts (0 = off)
	snapDir   string // server role: durable snapshot directory ("" = off)
	snapKeep  int    // server role: previous snapshots kept besides the newest
	minCohort int    // server role: fresh connections awaited before the run starts
	maxCohort int    // server role: seat-book cap for mid-run joins
	fam     data.Family
	scale   data.Scale
	arch    string
	width   int
	clients int
	tasks   int
	ds      *data.Dataset
	seqs    [][]data.ClientTask
	cluster *device.Cluster
	build   func(*tensor.RNG) *model.Model
	factory fed.Factory
}

func main() {
	dataset := flag.String("dataset", "CIFAR100", "CIFAR100, FC100, CORe50, MiniImageNet, TinyImageNet, SVHN")
	method := flag.String("method", "FedKNOW", "FedKNOW or a baseline (GEM, BCN, Co2L, EWC, MAS, AGS-CL, FedAvg, APFL, FedRep, FLCN, FedWEIT)")
	arch := flag.String("arch", "", "model architecture (default: the paper's choice for the dataset)")
	scale := flag.String("scale", "ci", "ci or full")
	clients := flag.Int("clients", 0, "override client count")
	rounds := flag.Int("rounds", 0, "override aggregation rounds per task")
	iters := flag.Int("iters", 0, "override local iterations per round")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "concurrent clients (0 = GOMAXPROCS)")
	kernelThreads := flag.Int("kernel-threads", 0, "extra tensor-kernel workers shared across clients (0 = GOMAXPROCS); training clients also run kernels inline; results are identical for every setting")
	dropout := flag.Float64("dropout", 0, "per-round probability that a client drops offline (failure injection; 0 disables)")
	bandwidth := flag.Float64("bandwidth", 0, "per-client link bandwidth in bytes/second (0 = the paper's 1 MB/s default)")
	listen := flag.String("listen", "", "run as a wire-transport server on this TCP address (e.g. :7070) and wait for -clients connections")
	connect := flag.String("connect", "", "run as one wire-transport client of the server at this address")
	clientID := flag.Int("client-id", 0, "this client's ID when using -connect (0 ≤ id < clients)")
	compress := flag.String("compress", "none", "wire value encoding: none (lossless, bit-exact), fp16 or int8 (lossy, 2x/4x fewer bytes); every process of one run must agree")
	wireTimeout := flag.Duration("wire-timeout", 0, "per-message wire deadline (e.g. 2m): a hung peer errors instead of wedging the round; 0 disables; without -reconnect it must exceed the longest a healthy peer stays silent (async: the slowest client's whole task), with -reconnect a timeout eviction is recoverable so honest per-message bounds work")
	scheduler := flag.String("scheduler", "sync", "round-scheduling policy: sync (lockstep, bit-reproducible) or async (staleness-bounded buffered commits; stragglers no longer stall rounds); every process of one run must agree")
	asyncCommitK := flag.Int("async-commit-k", 0, "async scheduler: commit the global model every K accepted updates (0 = half the cohort)")
	maxStaleness := flag.Int("max-staleness", 0, "async scheduler: reject updates staler than this many global versions (0 = unbounded)")
	stalenessAlpha := flag.Float64("staleness-alpha", 0.5, "async scheduler: alpha in the staleness weight 1/(1+staleness)^alpha (0 disables deweighting)")
	shards := flag.Int("shards", 0, "partition the server's aggregation fold across this many concurrent per-shard reducers (bitwise-identical results for every value; buys server ingest throughput on multi-core hosts; 0 or 1 = single-loop default)")
	aggregator := flag.String("aggregator", "fedavg", "server aggregation rule: fedavg (weighted mean, the default), trimmed-mean[:beta], median, krum[:f], or fedopt[:momentum[:inner]] (server momentum over an inner rule); the robust rules bound what poisoned updates can do to the global; every process of one run must agree")
	rejectNonFinite := flag.Bool("reject-nonfinite", false, "server ingest hardening: drop and count updates carrying NaN/Inf parameters or a non-finite weight instead of folding them into the global (defaults on when -aggregator selects a robust rule; every process of one run must agree)")
	maxFrame := flag.Int("max-frame", 0, "cap the wire decoder's frame payload in bytes, bounding the allocation a malicious length prefix can force (0 = the 256 MB package default; size it to the dense model payload plus slack)")
	reconnect := flag.Int("reconnect", 0, "client role: rejoin a dropped connection with a catch-up handshake, retrying up to N consecutive times under capped exponential backoff (requires -scheduler async; 0 disables)")
	syncEvict := flag.Bool("sync-evict", false, "sync scheduler: evict a client whose connection drops and keep the cohort going instead of aborting the run (relaxes lockstep reproducibility; every process of one run must agree)")
	snapshotDir := flag.String("snapshot-dir", "", "server role: durably snapshot the versioned global and the full seat book to this directory at every commit and task boundary; a restarted server finding a snapshot here resumes the run, re-admitting -reconnect clients through the rejoin path (requires -listen; restart recovery requires -scheduler async)")
	snapshotKeep := flag.Int("snapshot-keep", 1, "previous snapshots retained besides the newest (negative keeps all)")
	minCohort := flag.Int("min-cohort", 0, "server role, elastic membership: start the run once this many fresh clients have connected instead of all -clients; the rest may enroll mid-run with -join (requires -listen and -scheduler async; 0 = -clients, the fixed-cohort default)")
	maxCohort := flag.Int("max-cohort", 0, "server role, elastic membership: cap the seat book — mid-run -join enrollments beyond it are refused and counted (0 = -clients; at most -clients, the data-shard space)")
	join := flag.Bool("join", false, "client role, elastic membership: enroll into the running federation without a preassigned seat — the server assigns the seat ID and replies with a catch-up (requires -connect and -scheduler async; excludes -client-id)")
	flag.Parse()
	tensor.SetKernelThreads(*kernelThreads)

	if *listen != "" && *connect != "" {
		fmt.Fprintln(os.Stderr, "-listen and -connect are mutually exclusive")
		os.Exit(2)
	}
	if *scheduler != fed.SchedulerSync && *scheduler != fed.SchedulerAsync {
		fmt.Fprintf(os.Stderr, "unknown -scheduler %q (sync, async)\n", *scheduler)
		os.Exit(2)
	}
	if *scheduler == fed.SchedulerAsync && *dropout > 0 {
		fmt.Fprintln(os.Stderr, "-scheduler async does not support -dropout (async churn is modelled as eviction on connection loss)")
		os.Exit(2)
	}
	if *reconnect > 0 && *scheduler != fed.SchedulerAsync {
		fmt.Fprintln(os.Stderr, "-reconnect requires -scheduler async (lockstep has no rejoin splice point; see -sync-evict for sync-mode drop tolerance)")
		os.Exit(2)
	}
	if *syncEvict && *scheduler != fed.SchedulerSync {
		fmt.Fprintln(os.Stderr, "-sync-evict only applies to -scheduler sync (async always evicts and supports rejoin)")
		os.Exit(2)
	}
	if *snapshotDir != "" && *listen == "" {
		fmt.Fprintln(os.Stderr, "-snapshot-dir requires -listen (snapshots capture the wire server's seat book; loopback runs have no rejoin path to restore through)")
		os.Exit(2)
	}
	if (*minCohort != 0 || *maxCohort != 0) && *listen == "" {
		fmt.Fprintln(os.Stderr, "-min-cohort/-max-cohort require -listen (elastic membership is a wire-server feature)")
		os.Exit(2)
	}
	if (*minCohort != 0 || *maxCohort != 0) && *scheduler != fed.SchedulerAsync {
		fmt.Fprintln(os.Stderr, "-min-cohort/-max-cohort require -scheduler async (a lockstep cohort is fixed at round start)")
		os.Exit(2)
	}
	if *join {
		if *connect == "" {
			fmt.Fprintln(os.Stderr, "-join requires -connect (it is a client-role flag)")
			os.Exit(2)
		}
		if *scheduler != fed.SchedulerAsync {
			fmt.Fprintln(os.Stderr, "-join requires -scheduler async (only the async scheduler admits mid-run seats)")
			os.Exit(2)
		}
		clientIDSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "client-id" {
				clientIDSet = true
			}
		})
		if clientIDSet {
			fmt.Fprintln(os.Stderr, "-join excludes -client-id (the server assigns the seat; use -connect with -client-id for a fresh-cohort seat)")
			os.Exit(2)
		}
	}
	quant, ok := fed.QuantByName(*compress)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -compress mode %q (none, fp16, int8)\n", *compress)
		os.Exit(2)
	}
	if _, err := fed.ParseAggregator(*aggregator, *shards); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *maxFrame < 0 {
		fmt.Fprintln(os.Stderr, "-max-frame must be non-negative")
		os.Exit(2)
	}
	// Ingest hardening defaults on for robust rules: a robust aggregation
	// that folds NaN is still poisoned. An explicit -reject-nonfinite=false
	// wins over the default.
	robustSelected := *aggregator != "" && *aggregator != "fedavg"
	rejectSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "reject-nonfinite" {
			rejectSet = true
		}
	})
	if robustSelected && !rejectSet {
		*rejectNonFinite = true
	}

	fam, ok := data.FamilyByName(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	sc := data.CI
	if *scale == "full" {
		sc = data.Full
	}
	ds, tasks := fam.Build(sc, *seed)
	rt := experiments.RuntimeFor(fam, sc)
	if *clients > 0 {
		rt.Clients = *clients
	}
	if *rounds > 0 {
		rt.Rounds = *rounds
	}
	if *iters > 0 {
		rt.LocalIters = *iters
	}
	if *bandwidth > 0 {
		rt.Bandwidth = *bandwidth
	}
	architecture := *arch
	if architecture == "" {
		if fam.Name == "MiniImageNet" || fam.Name == "TinyImageNet" {
			architecture = "ResNet18"
		} else {
			architecture = "SixCNN"
		}
	}
	alloc := data.DefaultAlloc(*seed + 1)
	if sc == data.CI {
		alloc = data.CIAlloc(*seed + 1)
	}
	seqs := data.Federate(tasks, rt.Clients, alloc)

	j := &job{
		cfg: fed.Config{
			Method: *method, Rounds: rt.Rounds, LocalIters: rt.LocalIters,
			BatchSize: rt.BatchSize, LR: rt.LR, LRDecay: rt.LRDecay,
			NumClasses: ds.NumClasses, Bandwidth: rt.Bandwidth, Seed: *seed,
			Parallelism: *parallel, DropoutProb: *dropout,
			Scheduler: *scheduler, SyncEvict: *syncEvict,
			Async: fed.AsyncConfig{CommitEvery: *asyncCommitK,
				MaxStaleness: *maxStaleness, StalenessAlpha: *stalenessAlpha},
			Shards: *shards,
			Robust: *aggregator, RejectNonFinite: *rejectNonFinite,
		},
		wire: fed.WireOptions{
			Compression: fed.Compression{Quant: quant},
			Timeout:     *wireTimeout,
			MaxFrame:    *maxFrame,
		},
		reconnect: *reconnect,
		snapDir:   *snapshotDir,
		snapKeep:  *snapshotKeep,
		minCohort: *minCohort,
		maxCohort: *maxCohort,
		fam: fam, scale: sc, arch: architecture, width: rt.Width,
		clients: rt.Clients, tasks: len(tasks), ds: ds, seqs: seqs,
		cluster: device.Jetson20(),
		build: func(rng *tensor.RNG) *model.Model {
			return model.MustBuild(architecture, ds.NumClasses, ds.C, ds.H, ds.W, rt.Width, rng)
		},
		factory: experiments.MethodFactory(*method, sc),
	}
	// Resolve the elastic-cohort knobs against the seat space. -clients is
	// the data-shard (and so seat-ID) space; the initial cohort may be
	// smaller, the cap may not exceed it.
	if j.minCohort == 0 {
		j.minCohort = j.clients
	}
	if j.maxCohort == 0 {
		j.maxCohort = j.clients
	}
	if j.minCohort < 1 || j.minCohort > j.clients {
		fmt.Fprintf(os.Stderr, "-min-cohort %d out of range [1,%d] (-clients bounds the seat space)\n", j.minCohort, j.clients)
		os.Exit(2)
	}
	if j.maxCohort < j.minCohort || j.maxCohort > j.clients {
		fmt.Fprintf(os.Stderr, "-max-cohort %d out of range [%d,%d] (at least -min-cohort, at most -clients)\n", j.maxCohort, j.minCohort, j.clients)
		os.Exit(2)
	}

	var err error
	switch {
	case *listen != "":
		err = runServe(j, *listen)
	case *connect != "":
		err = runConnect(j, *connect, *clientID, *join)
	default:
		runLoopback(j)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// fingerprint digests the full job — Config plus the knobs Config cannot
// see (dataset, architecture, client count, task count, width, scale, and
// the lossy -compress mode, which changes results) — so the wire handshake
// rejects any flag mismatch between processes.
func (j *job) fingerprint() uint64 {
	return j.cfg.Fingerprint(j.fam.Name, j.arch, j.scale.String(),
		fmt.Sprint(j.clients), fmt.Sprint(j.tasks), fmt.Sprint(j.width),
		j.wire.Compression.Quant.String())
}

// banner prints the run header shared by the loopback and server roles.
func banner(j *job, transport string) {
	sched := j.cfg.Scheduler
	if sched == "" {
		sched = fed.SchedulerSync
	}
	fmt.Printf("%s on %s (%s, %d clients, %d tasks, %s scale, %s transport, %s scheduler)\n",
		j.cfg.Method, j.fam.Name, j.arch, j.clients, j.tasks, j.scale, transport, sched)
	fmt.Printf("%-6s %-10s %-10s %-10s %-12s %-12s\n",
		"task", "avg-acc", "forget", "sim-hours", "up-bytes", "down-bytes")
}

// streamRows returns an observer that prints each task's row the moment the
// server finishes it.
func streamRows() fed.RoundObserver {
	return fed.ObserverFuncs{Task: func(tp fed.TaskPoint) {
		fmt.Printf("%-6d %-10.4f %-10.4f %-10.4f %-12d %-12d\n",
			tp.TaskIdx+1, tp.AvgAccuracy, tp.ForgettingRate, tp.SimHours, tp.UpBytes, tp.DownBytes)
	}}
}

// runLoopback runs the whole federation in-process.
func runLoopback(j *job) {
	engine := fed.NewEngine(j.cfg, j.cluster, j.seqs, j.build, j.factory)
	engine.SetObserver(streamRows())
	banner(j, "loopback")
	engine.Run()
}

// runServe is the server role of a distributed run: accept one TCP
// connection per client, schedule the rounds, aggregate, stream results.
// Under the async scheduler the listener stays open for the whole run,
// accepting catch-up rejoins from clients whose connections dropped. With
// -snapshot-dir the server is crash-only: every commit and task boundary is
// durably snapshotted (the store is opened — and its directory probed for
// writability — before any client connects, so a misconfiguration fails
// fast), and a restart that finds a snapshot resumes from it instead of
// starting fresh.
func runServe(j *job, addr string) error {
	var store *checkpoint.Store
	if j.snapDir != "" {
		var err error
		store, err = checkpoint.OpenStore(j.snapDir, j.snapKeep, j.fingerprint())
		if err != nil {
			return err
		}
		snap, err := store.Load()
		if err != nil {
			return err
		}
		if snap != nil {
			return runRestore(j, addr, store, snap)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on %s, waiting for %d clients...\n", ln.Addr(), j.minCohort)
	var links []fed.Transport
	var acceptor *fed.RejoinAcceptor
	if j.cfg.Scheduler == fed.SchedulerAsync {
		// The fresh cohort is -min-cohort seats; the acceptor keeps the
		// listener open for the rest of the run, bounding rejoin seat IDs by
		// -max-cohort so a mid-run joiner that later drops can come back.
		links, err = fed.ServeWith(ln, j.minCohort, j.fingerprint(), j.wire)
		if err == nil {
			acceptor = fed.AcceptRejoins(ln, j.maxCohort, j.fingerprint(), j.wire)
			defer acceptor.Close()
		}
	} else {
		links, err = fed.ServeWith(ln, j.clients, j.fingerprint(), j.wire)
		ln.Close()
	}
	if err != nil {
		return err
	}
	// A sync run always resolves -min-cohort/-max-cohort to -clients, so the
	// fixed-cohort configuration is unchanged by the elastic knobs.
	scfg := j.cfg.ServerConfigFor(j.minCohort, j.tasks)
	scfg.MaxCohort = j.maxCohort
	srv := fed.NewServer(scfg, nil, links)
	if acceptor != nil {
		acceptor.SetLogf(log.Printf)
		srv.SetRejoins(acceptor.Rejoins())
		srv.SetJoins(acceptor.Joins())
	}
	if store != nil {
		srv.SetSnapshots(store)
	}
	srv.SetObserver(streamRows())
	banner(j, "wire")
	_, err = srv.Run(context.Background())
	if err == nil {
		// WireTraffic also counts connections retired by a rejoin, so the
		// summary never loses the bytes a dropped link already carried.
		sent, recv := srv.WireTraffic()
		fmt.Printf("measured wire traffic (%s): %.2f MB sent, %.2f MB received\n",
			j.wire.Compression.Quant, float64(sent)/(1<<20), float64(recv)/(1<<20))
	}
	return err
}

// runRestore is the crash-recovery server role: rebuild the books from the
// newest durable snapshot, reopen the listener for rejoin hellos only (the
// cohort already exists — every client holds local training state and
// re-admits itself), and resume the run at the snapshotted task and global
// version. Clients running -reconnect just redial; each loses at most the
// uploads since the last commit, which it retrains because the restored
// Seen counts are authoritative.
func runRestore(j *job, addr string, store *checkpoint.Store, snap *checkpoint.ServerSnapshot) error {
	if j.cfg.Scheduler != fed.SchedulerAsync {
		return fmt.Errorf("snapshot found in %s, but restart recovery requires -scheduler async (lockstep has no rejoin path to re-admit the cohort through)", store.Dir())
	}
	scfg := j.cfg.ServerConfigFor(j.minCohort, j.tasks)
	scfg.MaxCohort = j.maxCohort
	srv, err := fed.NewServerFromSnapshot(scfg, nil, snap)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	acceptor := fed.AcceptRejoins(ln, j.maxCohort, j.fingerprint(), j.wire)
	defer acceptor.Close()
	acceptor.SetLogf(log.Printf)
	srv.SetRejoins(acceptor.Rejoins())
	srv.SetJoins(acceptor.Joins())
	srv.SetSnapshots(store)
	srv.SetObserver(streamRows())
	if snap.TaskIdx >= j.tasks {
		// The final boundary cut: the crashed process had already finished
		// every task, so there is nothing to resume — reprint the summary.
		fmt.Printf("restored snapshot %d from %s: the run already completed all %d tasks at global version %d\n",
			snap.Seq, store.Dir(), j.tasks, snap.Version)
	} else {
		fmt.Printf("restored snapshot %d from %s: resuming at task %d/%d, global version %d; waiting for rejoins on %s\n",
			snap.Seq, store.Dir(), snap.TaskIdx+1, j.tasks, snap.Version, ln.Addr())
	}
	banner(j, "wire")
	_, err = srv.Run(context.Background())
	if err == nil {
		sent, recv := srv.WireTraffic()
		fmt.Printf("measured wire traffic (%s): %.2f MB sent, %.2f MB received\n",
			j.wire.Compression.Quant, float64(sent)/(1<<20), float64(recv)/(1<<20))
	}
	return err
}

// runConnect is the client role of a distributed run: rebuild this client's
// shard and model deterministically from the shared flags, dial the server,
// and follow the round lifecycle until the server closes the link. With
// -reconnect a dropped connection is rejoined with the catch-up handshake
// instead of ending the process. With -join the client enrolls mid-run: the
// server assigns the seat ID, the client rebuilds that seat's shard and
// model, resumes from the catch-up, and heals later drops through the
// ordinary rejoin path.
func runConnect(j *job, addr string, id int, join bool) error {
	if join {
		return runJoin(j, addr)
	}
	if id < 0 || id >= j.clients {
		return fmt.Errorf("client id %d out of range [0,%d)", id, j.clients)
	}
	c := fed.NewWireClient(j.cfg, id, j.clients, j.cluster.Devices[id%j.cluster.Size()],
		j.seqs[id], j.build, j.factory)
	if j.reconnect > 0 {
		fmt.Printf("client %d joining %s with rejoin-on-drop, up to %d attempts (%s on %s)\n",
			id, addr, j.reconnect, j.cfg.Method, j.fam.Name)
		if err := c.RunReconnect(context.Background(), fed.Reconnect{
			Addr: addr, Fingerprint: j.fingerprint(), Wire: j.wire, Attempts: j.reconnect,
		}); err != nil {
			return err
		}
		fmt.Printf("client %d done\n", id)
		return nil
	}
	t, err := fed.DialWith(addr, id, j.fingerprint(), j.wire)
	if err != nil {
		return err
	}
	fmt.Printf("client %d joined %s (%s on %s)\n", id, addr, j.cfg.Method, j.fam.Name)
	if err := c.Run(context.Background(), t); err != nil {
		return err
	}
	fmt.Printf("client %d done\n", id)
	return nil
}

// runJoin enrolls a seatless client mid-run: the join handshake returns the
// server-assigned seat, from which the client deterministically rebuilds that
// seat's data shard and model (exactly as a fresh-cohort process with that
// -client-id would have), then resumes the async lifecycle from the server's
// catch-up. A later drop rejoins the assigned seat like any -reconnect
// client.
func runJoin(j *job, addr string) error {
	t, seat, cu, err := fed.DialJoinWith(addr, j.fingerprint(), j.wire)
	if err != nil {
		return err
	}
	if seat < 0 || seat >= j.clients {
		t.Close()
		return fmt.Errorf("server assigned seat %d outside this job's seat space [0,%d)", seat, j.clients)
	}
	c := fed.NewWireClient(j.cfg, seat, j.clients, j.cluster.Devices[seat%j.cluster.Size()],
		j.seqs[seat], j.build, j.factory)
	fmt.Printf("client enrolled mid-run as seat %d on %s (catch-up: task %d, v%d)\n",
		seat, addr, cu.TaskIdx+1, cu.Version)
	if err := c.ResumeReconnect(context.Background(), fed.Reconnect{
		Addr: addr, Fingerprint: j.fingerprint(), Wire: j.wire, Attempts: j.reconnect,
	}, t, cu); err != nil {
		return err
	}
	fmt.Printf("client %d done\n", seat)
	return nil
}
