// Command fedknow-train runs one federated continual-learning job with
// explicit knobs and prints the per-task accuracy, forgetting rate, time and
// communication accounting.
//
// Usage:
//
//	fedknow-train -dataset CIFAR100 -method FedKNOW -clients 4 -rounds 2
//	fedknow-train -dataset MiniImageNet -method GEM -arch ResNet18
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/tensor"
)

func main() {
	dataset := flag.String("dataset", "CIFAR100", "CIFAR100, FC100, CORe50, MiniImageNet, TinyImageNet, SVHN")
	method := flag.String("method", "FedKNOW", "FedKNOW or a baseline (GEM, BCN, Co2L, EWC, MAS, AGS-CL, FedAvg, APFL, FedRep, FLCN, FedWEIT)")
	arch := flag.String("arch", "", "model architecture (default: the paper's choice for the dataset)")
	scale := flag.String("scale", "ci", "ci or full")
	clients := flag.Int("clients", 0, "override client count")
	rounds := flag.Int("rounds", 0, "override aggregation rounds per task")
	iters := flag.Int("iters", 0, "override local iterations per round")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "concurrent clients (0 = GOMAXPROCS)")
	kernelThreads := flag.Int("kernel-threads", 0, "extra tensor-kernel workers shared across clients (0 = GOMAXPROCS); training clients also run kernels inline; results are identical for every setting")
	flag.Parse()
	tensor.SetKernelThreads(*kernelThreads)

	fam, ok := data.FamilyByName(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	sc := data.CI
	if *scale == "full" {
		sc = data.Full
	}
	ds, tasks := fam.Build(sc, *seed)
	rt := experiments.RuntimeFor(fam, sc)
	if *clients > 0 {
		rt.Clients = *clients
	}
	if *rounds > 0 {
		rt.Rounds = *rounds
	}
	if *iters > 0 {
		rt.LocalIters = *iters
	}
	architecture := *arch
	if architecture == "" {
		if fam.Name == "MiniImageNet" || fam.Name == "TinyImageNet" {
			architecture = "ResNet18"
		} else {
			architecture = "SixCNN"
		}
	}
	alloc := data.DefaultAlloc(*seed + 1)
	if sc == data.CI {
		alloc = data.CIAlloc(*seed + 1)
	}
	seqs := data.Federate(tasks, rt.Clients, alloc)

	cfg := fed.Config{
		Method: *method, Rounds: rt.Rounds, LocalIters: rt.LocalIters,
		BatchSize: rt.BatchSize, LR: rt.LR, LRDecay: rt.LRDecay,
		NumClasses: ds.NumClasses, Bandwidth: rt.Bandwidth, Seed: *seed,
		Parallelism: *parallel,
	}
	build := func(rng *tensor.RNG) *model.Model {
		return model.MustBuild(architecture, ds.NumClasses, ds.C, ds.H, ds.W, rt.Width, rng)
	}
	engine := fed.NewEngine(cfg, device.Jetson20(), seqs, build,
		experiments.MethodFactory(*method, sc))

	fmt.Printf("%s on %s (%s, %d clients, %d tasks, %s scale)\n",
		*method, fam.Name, architecture, rt.Clients, len(tasks), sc)
	res := engine.Run()
	fmt.Printf("%-6s %-10s %-10s %-10s %-12s %-12s\n",
		"task", "avg-acc", "forget", "sim-hours", "up-bytes", "down-bytes")
	for _, tp := range res.PerTask {
		fmt.Printf("%-6d %-10.4f %-10.4f %-10.4f %-12d %-12d\n",
			tp.TaskIdx+1, tp.AvgAccuracy, tp.ForgettingRate, tp.SimHours, tp.UpBytes, tp.DownBytes)
	}
}
