// Command fedknow-load measures aggregation throughput at cohort scale: it
// starts one asynchronous server process and a cohort of scripted wire
// peers that upload precomputed sparse updates as fast as the server folds
// them — no real training, so the aggregation fold is the bottleneck being
// measured. The same cohort runs twice, against the single-loop
// SparseFedAvg and against ShardedFedAvg at -shards, and the report
// (updates/sec, commits/sec, p50/p99 fold latency, sharded/single speedup)
// is written as JSON.
//
// Usage:
//
//	fedknow-load
//	fedknow-load -clients 32 -rounds 50 -params 65536 -shards 8
//	fedknow-load -bench-out bench/BENCH_throughput.json -baseline bench/BENCH_throughput_baseline.json
//
// Before any measurement the determinism pin replays a canned update
// sequence through both aggregators across shard and kernel-thread counts
// and aborts unless the folds agree bitwise — on a single-core box, where
// no parallel speedup is measurable, that pin is the result that matters,
// and the JSON is emitted either way.
//
// With -baseline the run is additionally gated against a committed report:
// the cohort shape must match and the measured speedup must not fall below
// the baseline's floor (-min-speedup overrides it, for builders whose core
// count differs from the baseline's). The gate makes fold-throughput
// regressions a CI failure instead of a dashboard footnote.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
)

func main() {
	clients := flag.Int("clients", 16, "cohort size (scripted wire peers)")
	rounds := flag.Int("rounds", 30, "updates each client uploads")
	params := flag.Int("params", 1<<16, "parameter-vector length")
	density := flag.Float64("density", 0.05, "fraction of coordinates each client's sparse update touches (masks are distinct per client)")
	commitEvery := flag.Int("commit-every", 0, "async commit window K (0 = the cohort size)")
	shards := flag.Int("shards", 0, "sharded mode's reducer count (0 = GOMAXPROCS, floored at 2)")
	seed := flag.Uint64("seed", 11, "random seed for the clients' sparse masks")
	benchOut := flag.String("bench-out", "BENCH_throughput.json", "output path for the JSON report")
	baseline := flag.String("baseline", "", "baseline BENCH_throughput.json to gate against (exits non-zero when the speedup falls below its floor)")
	minSpeedup := flag.Float64("min-speedup", 0, "override the baseline's speedup floor (0 = use the baseline's min_speedup)")
	quiet := flag.Bool("quiet", false, "suppress the servers' operational log lines")
	flag.Parse()

	opt := experiments.LoadBenchOptions{
		Clients: *clients, Rounds: *rounds, N: *params, Density: *density,
		CommitEvery: *commitEvery, Shards: *shards, Seed: *seed,
	}
	if !*quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := experiments.RunLoadBench(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("single-core box: the determinism pin is the acceptance signal; the speedup figure only reflects sharding overhead")
	}
	if err := rep.WriteJSON(*benchOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *benchOut)
	if *baseline != "" {
		base, err := experiments.ReadLoadBench(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
			os.Exit(1)
		}
		if err := rep.Compare(base, *minSpeedup, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
