// Command fedlint runs the repository's static-analysis suite (package
// internal/analysis) over Go package patterns and reports every finding
// that is not excused by a //lint:ignore comment.
//
// Usage:
//
//	fedlint [-only name,name] [-strict] [-list] [patterns...]
//
// Patterns default to ./... — every package under the current directory.
// Exit status is 0 when the tree is clean, 1 when there are findings, and
// 2 when analysis itself failed (unparseable or untypeable code).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	strict := flag.Bool("strict", false, "also report stale //lint:ignore suppressions")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Parse()

	suite := analysis.DefaultSuite()
	suite.Strict = *strict

	if *list {
		for _, a := range suite.Analyzers {
			fmt.Printf("fedlint/%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}

	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(strings.TrimPrefix(name, "fedlint/"))] = true
		}
		var selected []*analysis.Analyzer
		for _, a := range suite.Analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "fedlint: unknown analyzer %q (try -list)\n", name)
			os.Exit(2)
		}
		suite.Analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := suite.Run(pkgs, loader.Fset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fedlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
