// Command fedknow-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	fedknow-bench -exp fig4a -scale ci
//	fedknow-bench -exp table1 -scale full
//	fedknow-bench -exp all
//	fedknow-bench -exp sparse -bench-out BENCH_sparse.json -baseline bench/BENCH_sparse_baseline.json
//	fedknow-bench -exp async -bench-out BENCH_async.json
//	fedknow-bench -exp robust -bench-out BENCH_robust.json
//
// Experiments: fig4a–fig4h, table1, fig5, fig6, fig7, fig8, fig9, fig10,
// hyper, all — plus "sparse", which measures the sparse update pipeline
// (bytes/round and encode/decode/aggregate cost, dense vs sparse vs
// quantized) and emits BENCH_sparse.json (with -baseline it also prints a
// benchstat-style comparison and fails on byte regressions), "async",
// which runs the same federation under the synchronous and asynchronous
// schedulers with one straggler in the cohort and emits BENCH_async.json
// (simulated time per global-model commit), and "robust", which measures
// every Byzantine-robust aggregation rule (and the naive mean) against the
// adversarial attack matrix and emits BENCH_robust.json (RMS deviation from
// the honest cohort's mean). Scale "ci" (default) runs the laptop-sized
// configuration; "full" mirrors the paper's client/round counts and takes
// hours on CPU.
//
// The figure/table experiments also accept the scheduler knobs (-scheduler
// async -async-commit-k 4 -max-staleness 8 -staleness-alpha 0.5) to
// regenerate any artefact under asynchronous scheduling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fed"
	"repro/internal/tensor"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig4a..fig4h, table1, fig5, fig6, fig7, fig8, fig9, fig10, ablation, hyper, sparse, async, robust, all)")
	scale := flag.String("scale", "ci", "ci or full")
	benchOut := flag.String("bench-out", "", "output path for -exp sparse/async/robust (default BENCH_sparse.json / BENCH_async.json / BENCH_robust.json)")
	baseline := flag.String("baseline", "", "baseline BENCH_sparse.json to compare against (-exp sparse; exits non-zero on byte regressions)")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "concurrent clients per federated engine (0 = GOMAXPROCS)")
	kernelThreads := flag.Int("kernel-threads", 0, "extra tensor-kernel workers shared across clients (0 = GOMAXPROCS); training clients also run kernels inline; results are identical for every setting")
	progress := flag.Bool("progress", false, "stream one line per finished task of every engine run (full-scale runs take hours; this shows they are alive)")
	scheduler := flag.String("scheduler", "sync", "round-scheduling policy for the figure/table experiments: sync (lockstep, bit-reproducible) or async (staleness-bounded buffered commits)")
	asyncCommitK := flag.Int("async-commit-k", 0, "async scheduler: commit the global model every K accepted updates (0 = half the cohort)")
	maxStaleness := flag.Int("max-staleness", 0, "async scheduler: reject updates staler than this many global versions (0 = unbounded)")
	stalenessAlpha := flag.Float64("staleness-alpha", 0.5, "async scheduler: alpha in the staleness weight 1/(1+staleness)^alpha (0 disables deweighting)")
	syncEvict := flag.Bool("sync-evict", false, "sync scheduler: evict a dropped client and keep the cohort going instead of aborting (relaxes lockstep reproducibility)")
	shards := flag.Int("shards", 0, "partition each engine's server-side aggregation fold across this many concurrent per-shard reducers (bitwise-identical results for every value; 0 or 1 = single-loop default)")
	flag.Parse()
	tensor.SetKernelThreads(*kernelThreads)
	if *scheduler != fed.SchedulerSync && *scheduler != fed.SchedulerAsync {
		fmt.Fprintf(os.Stderr, "unknown -scheduler %q (sync, async)\n", *scheduler)
		os.Exit(2)
	}

	if *exp == "sparse" {
		out := *benchOut
		if out == "" {
			out = "BENCH_sparse.json"
		}
		if err := runSparseBench(out, *baseline, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *exp == "async" {
		out := *benchOut
		if out == "" {
			out = "BENCH_async.json"
		}
		if err := runAsyncBench(out, *seed, *asyncCommitK, *maxStaleness, *stalenessAlpha); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *exp == "robust" {
		out := *benchOut
		if out == "" {
			out = "BENCH_robust.json"
		}
		if err := runRobustBench(out, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var sc data.Scale
	switch *scale {
	case "ci":
		sc = data.CI
	case "full":
		sc = data.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	opt := experiments.Options{Scale: sc, Seed: *seed, Out: os.Stdout,
		Parallelism: *parallel, KernelThreads: *kernelThreads,
		Scheduler: *scheduler, SyncEvict: *syncEvict, AsyncCommitK: *asyncCommitK,
		MaxStaleness: *maxStaleness, StalenessAlpha: *stalenessAlpha,
		Shards: *shards}
	if *progress {
		opt.Observer = fed.ObserverFuncs{Task: func(tp fed.TaskPoint) {
			fmt.Fprintf(os.Stderr, "  · task %d done: avg-acc %.4f, sim-hours %.4f\n",
				tp.TaskIdx+1, tp.AvgAccuracy, tp.SimHours)
		}}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig4g", "fig4h",
			"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation", "hyper"}
	}
	for _, id := range ids {
		start := time.Now()
		fmt.Printf("\n### running %s (scale=%s)\n", id, sc)
		var err error
		switch {
		case strings.HasPrefix(id, "fig4"):
			_, err = experiments.Fig4(strings.TrimPrefix(id, "fig4"), opt)
		case id == "table1":
			_, err = experiments.Table1(opt, nil)
		case id == "fig5":
			_, err = experiments.Fig5(opt, nil)
		case id == "fig6":
			_, err = experiments.Fig6(opt)
		case id == "fig7":
			_, err = experiments.Fig7(opt)
		case id == "fig8":
			_, err = experiments.Fig8(opt)
		case id == "fig9":
			_, err = experiments.Fig9(opt, nil)
		case id == "fig10":
			_, err = experiments.Fig10(opt)
		case id == "ablation":
			_, err = experiments.Ablation(opt)
		case id == "hyper":
			_, err = experiments.HyperSearch("FedKNOW", opt)
		default:
			err = fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("### %s done in %s\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runSparseBench measures the sparse update pipeline, writes BENCH_sparse.json
// and, given a baseline, prints the before/after comparison (failing on
// regressions of the deterministic byte metrics).
func runSparseBench(out, baseline string, seed uint64) error {
	start := time.Now()
	fmt.Printf("### running sparse pipeline bench\n")
	rep := experiments.SparseBench(experiments.SparseBenchOptions{Seed: seed})
	rep.Print(os.Stdout)
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if baseline != "" {
		base, err := experiments.ReadSparseBench(baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if err := rep.Compare(base, os.Stdout); err != nil {
			return err
		}
	}
	fmt.Printf("### sparse done in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runRobustBench measures every robust aggregation rule (and the naive mean)
// against the adversarial attack matrix and writes BENCH_robust.json.
func runRobustBench(out string, seed uint64) error {
	start := time.Now()
	fmt.Printf("### running robust aggregation bench\n")
	rep, err := experiments.RobustBench(experiments.RobustBenchOptions{Seed: seed})
	if err != nil {
		return err
	}
	rep.Print(os.Stdout)
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("### robust done in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runAsyncBench compares the synchronous and asynchronous schedulers on the
// same straggler-shaped federation and writes BENCH_async.json.
func runAsyncBench(out string, seed uint64, commitK, maxStaleness int, alpha float64) error {
	start := time.Now()
	fmt.Printf("### running async scheduler bench\n")
	rep := experiments.AsyncBench(experiments.AsyncBenchOptions{
		Seed: seed, CommitK: commitK, MaxStaleness: maxStaleness, StalenessAlpha: alpha,
	})
	rep.Print(os.Stdout)
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	fmt.Printf("### async done in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
